//! Online ETA prediction, calibration, and the fleet SLO watchdog.
//!
//! Mission control for an evacuation needs two answers at every wakeup:
//! *when will each VM land?* and *is anything quietly going wrong?*
//!
//! [`EtaTracker`] answers the first. At each session wakeup the drain loop
//! projects the VM's completion time from its remaining transfer set, its
//! just-granted bandwidth share and the observatory's dirty-rate model
//! ([`project_eta_secs`]). Every projection is recorded; when the VM
//! completes, each one is scored against the actual completion instant and
//! the signed/absolute relative errors fold into a histogram. The tracker
//! also *calibrates online*: terminal costs the projection cannot see
//! (safepoint drain, the enforced GC, device resume) show up as a stable
//! signed bias on each VM's final projection, so an EWMA of that bias is
//! learned from completed migrations and folded into subsequent
//! projections. The digest surfaces p50/p90 absolute relative error and
//! the mean signed drift — the CI gate watches `eta.p90_abs_err`.
//!
//! [`Watchdog`] answers the second with three deterministic rules over the
//! same wakeup stream and the per-pipe timelines:
//!
//! * **`vm_stall`** — a VM's wire-byte counter made no progress across
//!   [`STALL_WAKEUPS`] consecutive wakeups;
//! * **`nonconvergence`** — the modelled dirty rate met or outran the
//!   granted share for [`NONCONVERGENCE_WAKEUPS`] consecutive wakeups
//!   (pre-copy is treading water long before the iteration cap trips);
//! * **`pipe_saturation`** — a topology pipe's subscribed minimum-rate
//!   demand exceeds its *current* capacity. Admission control guarantees
//!   demand fits at admission time, so this can only fire after a mid-run
//!   re-rate (a degraded core or WAN) — a fault-free drain yields zero
//!   findings by construction.
//!
//! Each finding is typed, fires at most once per subject, and carries the
//! [`CausalId`] of the wakeup that observed it, so a finding in the digest
//! links straight into the causal flow trace.
//!
//! Everything here is pure arithmetic over values the drain loop already
//! computes, in deterministic order: same plan, same findings, same
//! histogram bytes.

use crate::detect::WorkloadEstimate;
use netsim::{PipeTimelines, PAGE_HEADER_BYTES};
use simkit::telemetry::{CausalId, Histogram};
use vmem::PAGE_SIZE;

/// Wire bytes one guest page costs (payload plus per-page header).
pub const WIRE_PAGE_BYTES: f64 = (PAGE_SIZE + PAGE_HEADER_BYTES) as f64;

/// Absolute relative errors are clamped here before folding, so one
/// pathological projection cannot dominate the histogram sum.
pub const ABS_ERR_CAP: f64 = 10.0;

/// EWMA weight of each newly observed terminal bias sample.
pub const BIAS_ALPHA: f64 = 0.2;

/// Where each cohort's terminal-bias EWMA starts (nanoseconds). The
/// structural epilogue costs (resume pause, final-set transfer) are
/// charged by the caller; what remains is workload-dependent — the
/// enforced-GC readiness wait and the stop-copy set formed during the
/// final iteration — worth a few tens of milliseconds. Seeding the EWMA
/// there keeps a cohort's first completion wave honest; afterwards the
/// calibration tracks that cohort's measured residuals.
pub const TERMINAL_COST_PRIOR_NS: f64 = 50e6;

/// The learned terminal bias is clamped to this magnitude (nanoseconds).
/// It exists to absorb sub-second terminal costs the projection cannot see
/// (safepoint drain, the enforced GC, device resume); anything larger is
/// model error on one VM's final wakeup and must not leak into every other
/// VM's projections.
pub const BIAS_CLAMP_NS: f64 = 500e6;

/// Consecutive no-progress wakeups before `vm_stall` fires.
pub const STALL_WAKEUPS: u32 = 6;

/// Consecutive dirty-rate-outruns-share wakeups before `nonconvergence`
/// fires.
pub const NONCONVERGENCE_WAKEUPS: u32 = 3;

/// Effective fraction of the raw dirty rate that survives to the wire
/// before the first iteration has measured the real ratio. Transfer-bitmap
/// consultation and re-dirty coalescing shrink the re-send stream to a
/// small fraction of raw dirtying across the roster's workloads; an
/// admission-time projection that charges the full raw rate runs 2-3x
/// late, so the prior stands in until a measurement exists.
pub const ADMISSION_SHRINK_PRIOR: f64 = 0.15;

/// Rounds the diverging-regime projection charges at most. A session whose
/// share never outruns its dirty rate re-ships a near-constant re-dirty
/// set each round, but cyclic workloads routinely *look* diverging during
/// a peak and then converge in the next trough — charging every remaining
/// iteration would push those projections hours late, so the charge is
/// bounded.
pub const DIVERGENT_ROUNDS_CAP: u32 = 4;

/// Relative errors fold into the histogram in basis points (1e-4).
const BP: f64 = 10_000.0;

/// Seconds until a migration finishes, projected from its current state.
///
/// While the granted share `bandwidth_bps` outruns the modelled dirty rate
/// `dirty_bps`, pre-copy converges geometrically and the remaining work
/// drains in `remaining / (b - d)` seconds — the classic pre-copy bound.
/// When the share does not outrun the dirty rate, iterations stop
/// shrinking and the projection charges one full `remaining / b` round
/// per remaining iteration, bounded by [`DIVERGENT_ROUNDS_CAP`].
pub fn project_eta_secs(
    remaining_bytes: f64,
    bandwidth_bps: f64,
    dirty_bps: f64,
    iters_left: u32,
) -> f64 {
    if bandwidth_bps <= 0.0 {
        return f64::INFINITY;
    }
    if bandwidth_bps > dirty_bps {
        remaining_bytes / (bandwidth_bps - dirty_bps)
    } else {
        (remaining_bytes / bandwidth_bps) * f64::from(iters_left.clamp(1, DIVERGENT_ROUNDS_CAP))
    }
}

/// Cycle-aware ETA: [`project_eta_secs`] informed by the observatory.
///
/// `mean_dirty_bps` is the sensed cycle-average dirty rate; when a
/// confident [`WorkloadEstimate`] is supplied, the instantaneous rate is
/// the mean modulated by the cycle's ratio at the projection instant. If
/// the share does not outrun that instantaneous rate — the VM is inside a
/// dirty peak — the projection does what the cycle-aware scheduler does:
/// wait out the peak. It charges the time until the next below-average
/// window and drains the remaining set against the trough rate there.
/// Only when even the trough outruns the share does it fall back to the
/// bounded diverging charge.
pub fn project_eta_cycle_secs(
    remaining_bytes: f64,
    bandwidth_bps: f64,
    mean_dirty_bps: f64,
    est: Option<&WorkloadEstimate>,
    at_ns: u64,
    iters_left: u32,
) -> f64 {
    if bandwidth_bps <= 0.0 {
        return f64::INFINITY;
    }
    let dirty_now = est.map_or(mean_dirty_bps, |e| mean_dirty_bps * e.rate_ratio_at(at_ns));
    if bandwidth_bps > dirty_now {
        let eta = remaining_bytes / (bandwidth_bps - dirty_now);
        // A drain spanning a full cycle sees peaks and troughs average
        // out: charge the cycle-mean rate instead of freezing the
        // instant's ratio over the whole horizon.
        if let Some(e) = est {
            if eta * 1e9 >= e.period_ns as f64 && bandwidth_bps > mean_dirty_bps {
                return remaining_bytes / (bandwidth_bps - mean_dirty_bps);
            }
        }
        return eta;
    }
    if let Some(e) = est {
        let wait_ns = e.ns_until_low_window(at_ns);
        let trough = mean_dirty_bps * e.rate_ratio_at(at_ns + wait_ns);
        // Demand real headroom in the trough: a denominator within 25% of
        // zero turns a small rate-model error into an hours-late ETA, at
        // which point the bounded diverging charge is the safer claim.
        if wait_ns > 0 && bandwidth_bps > 1.25 * trough {
            return wait_ns as f64 / 1e9 + remaining_bytes / (bandwidth_bps - trough);
        }
    }
    project_eta_secs(remaining_bytes, bandwidth_bps, dirty_now, iters_left)
}

/// One recorded projection: made at `at_ns`, claiming completion at
/// `predicted_end_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtaPrediction {
    /// Wakeup instant the projection was made at.
    pub at_ns: u64,
    /// Projected completion instant (bias-calibrated).
    pub predicted_end_ns: u64,
}

#[derive(Debug)]
struct VmEta {
    name: String,
    cohort: usize,
    predictions: Vec<EtaPrediction>,
    completed_ns: Option<u64>,
}

/// Per-workload-cohort calibration state. Terminal residuals are
/// workload-shaped (a heap-heavy tenant's enforced GC runs longer than an
/// idle one's), so each cohort learns its own bias instead of sharing one
/// fleet-wide EWMA that whichever cohort completes last would poison.
#[derive(Debug)]
struct Cohort {
    name: String,
    bias_ns: f64,
}

/// Digest-ready calibration summary of one drain's ETA projections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaSummary {
    /// VMs whose completion was scored.
    pub vms: u64,
    /// Projections folded into the error histograms.
    pub predictions: u64,
    /// Median absolute relative error, `|predicted - actual| / horizon`.
    pub p50_abs_err: f64,
    /// 90th-percentile absolute relative error — the CI-gated number.
    pub p90_abs_err: f64,
    /// Mean *signed* relative error: positive means projections run late
    /// (past the actual landing), negative means they run early.
    pub drift: f64,
}

/// Records per-VM completion projections and scores them at completion.
#[derive(Debug)]
pub struct EtaTracker {
    frozen: bool,
    vms: Vec<VmEta>,
    cohorts: Vec<Cohort>,
    abs_err_bp: Histogram,
    signed_sum: f64,
    signed_n: u64,
    calibrated: u64,
}

impl EtaTracker {
    /// A fresh tracker. `frozen` is the CI drill switch: the tracker
    /// never re-projects — every wakeup re-serves (and re-scores) each
    /// VM's admission-time ETA verbatim, so the stale estimate's error
    /// over an ever-shrinking horizon explodes and the digest gate must
    /// trip on `eta.p90_abs_err`.
    pub fn new(frozen: bool) -> Self {
        Self {
            frozen,
            vms: Vec::new(),
            cohorts: Vec::new(),
            abs_err_bp: Histogram::new(),
            signed_sum: 0.0,
            signed_n: 0,
            calibrated: 0,
        }
    }

    /// Whether re-projection is disabled (the drill switch).
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Registers a VM under a calibration cohort (typically its workload
    /// profile name) and returns its tracker index. VMs in the same cohort
    /// share one terminal-bias EWMA, seeded at [`TERMINAL_COST_PRIOR_NS`].
    pub fn admit(&mut self, name: &str, cohort: &str) -> usize {
        let cohort = match self.cohorts.iter().position(|c| c.name == cohort) {
            Some(i) => i,
            None => {
                self.cohorts.push(Cohort {
                    name: cohort.to_string(),
                    bias_ns: TERMINAL_COST_PRIOR_NS,
                });
                self.cohorts.len() - 1
            }
        };
        self.vms.push(VmEta {
            name: name.to_string(),
            cohort,
            predictions: Vec::new(),
            completed_ns: None,
        });
        self.vms.len() - 1
    }

    /// Projects VM `vm`'s completion from its current state and records
    /// it, returning the (bias-calibrated) predicted completion instant.
    /// On a frozen tracker the admission-time projection is re-served
    /// instead (see [`EtaTracker::record`]).
    pub fn project(
        &mut self,
        vm: usize,
        at_ns: u64,
        remaining_bytes: f64,
        bandwidth_bps: f64,
        dirty_bps: f64,
        iters_left: u32,
    ) -> Option<u64> {
        let eta = project_eta_secs(remaining_bytes, bandwidth_bps, dirty_bps, iters_left);
        self.record(vm, at_ns, eta)
    }

    /// Records a projection computed by the caller (e.g. the cycle-aware
    /// [`project_eta_cycle_secs`]): folds in the VM's cohort terminal bias
    /// and stores the prediction. On a frozen tracker the fresh projection
    /// is discarded and the VM's admission-time ETA is re-served — and
    /// re-recorded at `at_ns`, so every stale serving is scored against
    /// the actual landing just like a live one.
    pub fn record(&mut self, vm: usize, at_ns: u64, eta_secs: f64) -> Option<u64> {
        if self.frozen {
            if let Some(first) = self.vms[vm].predictions.first().copied() {
                self.vms[vm].predictions.push(EtaPrediction {
                    at_ns,
                    predicted_end_ns: first.predicted_end_ns,
                });
                return Some(first.predicted_end_ns);
            }
        }
        let bias_ns = self.cohorts[self.vms[vm].cohort].bias_ns;
        let raw = at_ns as f64 + eta_secs * 1e9;
        let predicted_end_ns = (raw + bias_ns).max(at_ns as f64).min(u64::MAX as f64) as u64;
        self.vms[vm].predictions.push(EtaPrediction {
            at_ns,
            predicted_end_ns,
        });
        Some(predicted_end_ns)
    }

    /// The most recent projection recorded for VM `vm`.
    pub fn last_prediction(&self, vm: usize) -> Option<EtaPrediction> {
        self.vms[vm].predictions.last().copied()
    }

    /// Scores every projection of VM `vm` against its actual completion
    /// instant and folds the VM's terminal bias into the calibration EWMA.
    pub fn complete(&mut self, vm: usize, actual_end_ns: u64) {
        let slot = &mut self.vms[vm];
        if slot.completed_ns.is_some() {
            return;
        }
        slot.completed_ns = Some(actual_end_ns);
        for p in &slot.predictions {
            let horizon = actual_end_ns.saturating_sub(p.at_ns);
            if horizon == 0 {
                continue;
            }
            let signed = (p.predicted_end_ns as f64 - actual_end_ns as f64) / horizon as f64;
            let signed = signed.clamp(-ABS_ERR_CAP, ABS_ERR_CAP);
            self.abs_err_bp.record((signed.abs() * BP).round() as u64);
            self.signed_sum += signed;
            self.signed_n += 1;
        }
        if let Some(last) = slot.predictions.last() {
            // The last projection already carried the cohort's current
            // bias, so its residual is the *correction* the bias still
            // needs — fold a fraction of it on top.
            let residual = actual_end_ns as f64 - last.predicted_end_ns as f64;
            let cohort = &mut self.cohorts[slot.cohort];
            cohort.bias_ns =
                (cohort.bias_ns + BIAS_ALPHA * residual).clamp(-BIAS_CLAMP_NS, BIAS_CLAMP_NS);
            self.calibrated += 1;
        }
    }

    /// VMs folded into the calibration EWMA so far.
    pub fn calibrated(&self) -> u64 {
        self.calibrated
    }

    /// The digest-ready summary over everything scored so far.
    pub fn summary(&self) -> EtaSummary {
        let (p50, p90) = if self.abs_err_bp.count() == 0 {
            (0.0, 0.0)
        } else {
            (
                self.abs_err_bp.quantile(0.5) as f64 / BP,
                self.abs_err_bp.quantile(0.9) as f64 / BP,
            )
        };
        EtaSummary {
            vms: self.vms.iter().filter(|v| v.completed_ns.is_some()).count() as u64,
            predictions: self.signed_n,
            p50_abs_err: p50,
            p90_abs_err: p90,
            drift: if self.signed_n == 0 {
                0.0
            } else {
                self.signed_sum / self.signed_n as f64
            },
        }
    }

    /// The registered name of VM `vm`.
    pub fn vm_name(&self, vm: usize) -> &str {
        &self.vms[vm].name
    }
}

/// One typed SLO violation, linked into the causal flow trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogFinding {
    /// Rule identifier: `vm_stall`, `nonconvergence` or `pipe_saturation`.
    pub rule: &'static str,
    /// The VM or pipe the rule fired on.
    pub subject: String,
    /// Simulated instant the rule fired.
    pub at_ns: u64,
    /// The causal event (a wakeup) whose observation triggered the rule.
    pub causal: CausalId,
    /// Human-readable evidence, deterministic formatting.
    pub detail: String,
}

#[derive(Debug)]
struct VmWatch {
    name: String,
    last_wire: u64,
    stalled: u32,
    diverging: u32,
    stall_flagged: bool,
    diverge_flagged: bool,
}

/// Deterministic SLO rule evaluation over the wakeup stream and pipe
/// timelines. Every rule fires at most once per subject.
#[derive(Debug, Default)]
pub struct Watchdog {
    findings: Vec<WatchdogFinding>,
    vms: Vec<VmWatch>,
    flagged_pipes: Vec<String>,
}

impl Watchdog {
    /// A watchdog with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a VM and returns its watch index.
    pub fn admit(&mut self, name: &str) -> usize {
        self.vms.push(VmWatch {
            name: name.to_string(),
            last_wire: 0,
            stalled: 0,
            diverging: 0,
            stall_flagged: false,
            diverge_flagged: false,
        });
        self.vms.len() - 1
    }

    /// Feeds one wakeup observation for VM `vm`; `causal` is the wakeup's
    /// causal event id, `iters_left`/`max_iters` the session's remaining
    /// and total iteration budget. Returns the number of findings
    /// appended.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_vm(
        &mut self,
        vm: usize,
        at_ns: u64,
        causal: CausalId,
        wire_bytes: u64,
        dirty_bps: f64,
        bandwidth_bps: f64,
        iterations: usize,
        iters_left: u32,
        max_iters: u32,
    ) -> usize {
        let before = self.findings.len();
        let w = &mut self.vms[vm];
        // Stall: the wire counter froze. Only meaningful once the session
        // has moved bytes at least once.
        if iterations > 0 && wire_bytes == w.last_wire {
            w.stalled += 1;
        } else {
            w.stalled = 0;
        }
        w.last_wire = wire_bytes;
        if w.stalled >= STALL_WAKEUPS && !w.stall_flagged {
            w.stall_flagged = true;
            self.findings.push(WatchdogFinding {
                rule: "vm_stall",
                subject: w.name.clone(),
                at_ns,
                causal,
                detail: format!(
                    "no wire progress across {} wakeups at {} bytes",
                    STALL_WAKEUPS, wire_bytes
                ),
            });
        }
        // Non-convergence early warning: the modelled dirty rate has met
        // or outrun the granted share for several consecutive wakeups
        // *and* the session has burned most of its iteration budget.
        // Cyclic workloads legitimately outrun their share during peaks
        // and converge in the next trough, well inside the budget — only
        // a session still outrun with >= 3/4 of its iterations spent is
        // genuinely headed for the cap.
        let w = &mut self.vms[vm];
        let budget_thin = max_iters > 0 && iters_left.saturating_mul(4) <= max_iters;
        if iterations >= 2 && budget_thin && dirty_bps >= bandwidth_bps && bandwidth_bps > 0.0 {
            w.diverging += 1;
        } else {
            w.diverging = 0;
        }
        if w.diverging >= NONCONVERGENCE_WAKEUPS && !w.diverge_flagged {
            w.diverge_flagged = true;
            self.findings.push(WatchdogFinding {
                rule: "nonconvergence",
                subject: w.name.clone(),
                at_ns,
                causal,
                detail: format!(
                    "dirty rate {:.0} B/s >= granted {:.0} B/s for {} wakeups",
                    dirty_bps, bandwidth_bps, NONCONVERGENCE_WAKEUPS
                ),
            });
        }
        self.findings.len() - before
    }

    /// Evaluates the pipe-saturation rule over freshly sampled timelines;
    /// `causal` is the wakeup whose sampling pass observed them. Returns
    /// the number of findings appended.
    pub fn observe_pipes(&mut self, at_ns: u64, causal: CausalId, pipes: &PipeTimelines) -> usize {
        let before = self.findings.len();
        for pipe in pipes.pipes() {
            let Some(demand) = pipe.queued_demand.last() else {
                continue;
            };
            let capacity = pipe.last_capacity_bps;
            if capacity > 0.0 && demand > capacity && !self.flagged_pipes.contains(&pipe.name) {
                self.flagged_pipes.push(pipe.name.clone());
                self.findings.push(WatchdogFinding {
                    rule: "pipe_saturation",
                    subject: pipe.name.clone(),
                    at_ns,
                    causal,
                    detail: format!(
                        "subscribed min-rate demand {:.0} B/s exceeds capacity {:.0} B/s",
                        demand, capacity
                    ),
                });
            }
        }
        self.findings.len() - before
    }

    /// Findings recorded so far, in firing order.
    pub fn findings(&self) -> &[WatchdogFinding] {
        &self.findings
    }

    /// Consumes the watchdog, yielding its findings.
    pub fn into_findings(self) -> Vec<WatchdogFinding> {
        self.findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkSpec, PipeTimelines, Topology};
    use simkit::units::Bandwidth;
    use simkit::{SimDuration, SimTime};

    #[test]
    fn projection_converging_and_diverging_regimes() {
        // Converging: 100 MB remaining, 10 MB/s share, 2 MB/s dirtying:
        // drains in 100/8 = 12.5 s.
        let secs = project_eta_secs(100e6, 10e6, 2e6, 10);
        assert!((secs - 12.5).abs() < 1e-9, "got {secs}");
        // Diverging: share <= dirty rate charges one round per remaining
        // iteration.
        let secs = project_eta_secs(100e6, 10e6, 10e6, 4);
        assert!((secs - 40.0).abs() < 1e-9, "got {secs}");
        assert!(project_eta_secs(1.0, 0.0, 0.0, 1).is_infinite());
    }

    #[test]
    fn tracker_scores_predictions_against_actual_completion() {
        let mut t = EtaTracker::new(false);
        let vm = t.admit("vm0", "w");
        // Perfect projection: 10 MB at 1 MB/s, no dirtying, plus the
        // terminal-cost prior -> lands at exactly 10.05 s.
        t.project(vm, 0, 10e6, 1e6, 0.0, 30).unwrap();
        t.complete(vm, 10_050_000_000);
        let s = t.summary();
        assert_eq!(s.vms, 1);
        assert_eq!(s.predictions, 1);
        assert!(s.p90_abs_err < 0.01, "p90 {}", s.p90_abs_err);
        assert!(s.drift.abs() < 0.01, "drift {}", s.drift);
    }

    #[test]
    fn bias_calibration_learns_terminal_overhead() {
        let mut t = EtaTracker::new(false);
        // Five identical VMs whose actual landing runs 0.4 s past the
        // naive projection (unmodelled terminal costs, within the bias
        // clamp). The EWMA starts at the terminal prior and must pull
        // later projections toward the truth.
        let mut first_err = None;
        let mut last_err = None;
        for i in 0..5 {
            let vm = t.admit(&format!("vm{i}"), "w");
            let p = t.project(vm, 0, 10e6, 1e6, 0.0, 30).unwrap();
            let actual = 10_400_000_000u64; // 10 s projected + 0.4 s overhead
            let err = (actual as f64 - p as f64).abs();
            if i == 0 {
                first_err = Some(err);
            }
            last_err = Some(err);
            t.complete(vm, actual);
        }
        assert!(
            last_err.unwrap() < first_err.unwrap() / 2.0,
            "calibration must shrink the terminal bias: first {:?}, last {:?}",
            first_err,
            last_err
        );
        assert_eq!(t.calibrated(), 5);
    }

    #[test]
    fn cohort_bias_does_not_leak_across_workloads() {
        let mut t = EtaTracker::new(false);
        // One cohort lands 0.4 s late on every completion; a fresh cohort
        // must still project from the prior, not the other's residuals.
        for i in 0..5 {
            let vm = t.admit(&format!("h{i}"), "gc-heavy");
            t.project(vm, 0, 10e6, 1e6, 0.0, 30).unwrap();
            t.complete(vm, 10_400_000_000);
        }
        let heavy = t.admit("h-last", "gc-heavy");
        let ph = t.project(heavy, 0, 10e6, 1e6, 0.0, 30).unwrap();
        let idle = t.admit("i0", "idle");
        let pi = t.project(idle, 0, 10e6, 1e6, 0.0, 30).unwrap();
        assert!(ph > pi, "the late cohort must have learned extra cost");
        assert_eq!(pi, 10_000_000_000 + TERMINAL_COST_PRIOR_NS as u64);
    }

    #[test]
    fn frozen_tracker_reserves_the_admission_projection() {
        let mut t = EtaTracker::new(true);
        let vm = t.admit("vm0", "w");
        let first = t.project(vm, 0, 10e6, 1e6, 0.0, 30).unwrap();
        // Later wakeups keep serving the stale admission ETA verbatim,
        // and every serving is scored.
        assert_eq!(t.project(vm, 5_000_000_000, 5e6, 1e6, 0.0, 30), Some(first));
        assert_eq!(
            t.project(vm, 19_000_000_000, 1e6, 1e6, 0.0, 30),
            Some(first)
        );
        t.complete(vm, 20_000_000_000);
        let s = t.summary();
        assert_eq!(s.predictions, 3);
        // The last serving's horizon is 1 s but the stale ETA is ~10 s
        // early: the tail error dwarfs what a live re-projection yields.
        assert!(s.p90_abs_err > 2.0, "stale tail err {}", s.p90_abs_err);
    }

    #[test]
    fn stall_rule_needs_consecutive_frozen_wakeups() {
        let mut w = Watchdog::new();
        let vm = w.admit("vm0");
        let c = CausalId(1);
        for i in 0..STALL_WAKEUPS {
            assert_eq!(w.observe_vm(vm, i as u64, c, 500, 0.0, 1e6, 3, 27, 30), 0);
        }
        // One more frozen wakeup crosses the threshold, exactly once.
        assert_eq!(w.observe_vm(vm, 99, c, 500, 0.0, 1e6, 3, 27, 30), 1);
        assert_eq!(w.observe_vm(vm, 100, c, 500, 0.0, 1e6, 3, 27, 30), 0);
        assert_eq!(w.findings()[0].rule, "vm_stall");
        // Progress resets the counter.
        let vm2 = w.admit("vm1");
        for i in 0..20u64 {
            assert_eq!(w.observe_vm(vm2, i, c, 500 + i, 0.0, 1e6, 3, 27, 30), 0);
        }
    }

    #[test]
    fn nonconvergence_rule_requires_sustained_outrun() {
        let mut w = Watchdog::new();
        let vm = w.admit("vm0");
        let c = CausalId(2);
        // Two budget-thin outrun wakeups, then relief: no finding.
        w.observe_vm(vm, 0, c, 1, 2e6, 1e6, 24, 6, 30);
        w.observe_vm(vm, 1, c, 2, 2e6, 1e6, 25, 5, 30);
        w.observe_vm(vm, 2, c, 3, 0.5e6, 1e6, 26, 4, 30);
        assert!(w.findings().is_empty());
        // Three consecutive outruns fire exactly once.
        w.observe_vm(vm, 3, c, 4, 2e6, 1e6, 27, 3, 30);
        w.observe_vm(vm, 4, c, 5, 2e6, 1e6, 28, 2, 30);
        assert_eq!(w.observe_vm(vm, 5, c, 6, 2e6, 1e6, 29, 1, 30), 1);
        assert_eq!(w.findings()[0].rule, "nonconvergence");
        assert_eq!(w.observe_vm(vm, 6, c, 7, 2e6, 1e6, 29, 1, 30), 0);
        // The same outrun with most of the budget left is a peak, not a
        // divergence: the rule stays quiet.
        let vm2 = w.admit("vm1");
        for i in 0..10u64 {
            assert_eq!(w.observe_vm(vm2, i, c, i, 2e6, 1e6, 5, 25, 30), 0);
        }
    }

    #[test]
    fn cycle_aware_projection_waits_out_the_peak() {
        use simkit::telemetry::SampleSeries;
        // A confident square-wave estimate: 2 s period, 1 s high / 1 s low.
        let mut series = SampleSeries::new(100_000_000, 64);
        for i in 0..40u64 {
            let v = if (i / 10) % 2 == 0 { 1000.0 } else { 100.0 };
            series.push(i * 100_000_000, v);
        }
        let est = crate::detect::detect(&series, 4_000_000_000).expect("cycle detected");
        // Mid-peak the instantaneous rate outruns the share; the
        // projection charges the wait to the trough plus a trough-rate
        // drain instead of the full diverging penalty.
        let mean = 550.0;
        let at = 4_050_000_000u64; // inside a high phase
        assert!(!est.in_low_window(at));
        let wait = est.ns_until_low_window(at);
        assert!(wait > 0, "a trough must lie ahead");
        let eta = project_eta_cycle_secs(10e6, 700.0 * 1e3, mean * 1e3, Some(&est), at, 50);
        let diverging = project_eta_secs(10e6, 700.0 * 1e3, mean * 2.0 * 1e3, 50);
        assert!(
            eta < diverging,
            "cycle-aware {eta} must beat diverging {diverging}"
        );
        // In the trough the converging bound applies — and because the
        // drain from there spans many cycles, peaks and troughs average
        // out: the projection charges the cycle-mean rate, not the
        // trough's instantaneous one.
        let at_low = at + wait;
        assert!(est.in_low_window(at_low));
        let direct = project_eta_cycle_secs(10e6, 700.0 * 1e3, mean * 1e3, Some(&est), at_low, 50);
        assert!((direct - 10e6 / ((700.0 - mean) * 1e3)).abs() < 1e-6);
    }

    #[test]
    fn pipe_saturation_fires_only_after_a_degrade() {
        let mb = Bandwidth::from_mbytes_per_sec;
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(125.0))],
            Some(LinkSpec::lan("core", mb(100.0))),
            vec![LinkSpec::lan("dst", mb(125.0))],
        );
        let mut pipes = PipeTimelines::for_topology(&topo, 16);
        let _f = topo.open_flow(0, Some(0), 1.0, mb(60.0));
        let mut w = Watchdog::new();
        let c = CausalId(3);
        let dt = SimDuration::from_millis(100);
        let t1 = SimTime::from_nanos(100_000_000);
        topo.sample_pipes(t1, dt, &mut pipes);
        // 60 MB/s demand against a 100 MB/s core: healthy.
        assert_eq!(w.observe_pipes(t1.as_nanos(), c, &pipes), 0);
        // The core degrades below the subscribed demand: one finding,
        // naming the pipe, exactly once.
        assert!(topo.set_core_rate(mb(40.0)));
        let t2 = SimTime::from_nanos(200_000_000);
        topo.sample_pipes(t2, dt, &mut pipes);
        assert_eq!(w.observe_pipes(t2.as_nanos(), c, &pipes), 1);
        let f = &w.findings()[0];
        assert_eq!(f.rule, "pipe_saturation");
        assert_eq!(f.subject, "core");
        assert_eq!(f.causal, c);
        assert_eq!(w.observe_pipes(t2.as_nanos(), c, &pipes), 0);
    }
}
