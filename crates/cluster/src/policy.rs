//! Ordering policies: who migrates next when uplink capacity frees up.
//!
//! All policies are deterministic functions of the roster and the
//! simulated guests' own state — no wall clock, no randomness — so a drain
//! under any policy is exactly reproducible from its seed.
//!
//! * [`FleetPolicy::Fifo`] admits in roster order with head-of-line
//!   blocking, the baseline every real orchestrator starts from.
//! * [`FleetPolicy::SmallestWorkingSetFirst`] probes each tenant's heap
//!   once at drain start and admits ascending by resident working set —
//!   the live-migration analogue of shortest-job-first.
//! * [`FleetPolicy::CycleAware`] defers tenants the *workload
//!   observatory* ([`crate::detect`]) predicts are at a dirty-rate peak
//!   of their own detected cycle, after Baruchi et al., who showed that
//!   migrating a VM during its write-quiet phase can cut transferred
//!   bytes by a third or more. The policy sees only what the scheduler
//!   *senses* — the per-VM dirty-rate ring and the estimates the
//!   detector derives from it. Estimates below
//!   [`crate::detect::CONFIDENCE_GATE`] score exactly 1.0, where the
//!   working-set tie-break takes over: when the detector is unsure the
//!   policy *is* smallest-working-set-first, never a guess.
//! * [`FleetPolicy::CycleDeclared`] is the oracle the observatory is
//!   measured against: the same peak-ratio deferral computed from the
//!   tenant's *declared* phase cycle (the application-assisted route —
//!   the same philosophy as the paper's JVMTI agent, one level up).
//!   Real tenants never provide this; it exists so `detect` accuracy has
//!   a ground-truth run to be compared with.

/// An ordering policy for the fleet scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// Roster order, head-of-line blocking.
    Fifo,
    /// One-time working-set probe at drain start, ascending.
    SmallestWorkingSetFirst,
    /// Defer tenants whose *detected* cycle predicts a dirty peak now.
    CycleAware,
    /// Defer tenants whose *declared* cycle says they are at a peak —
    /// the ground-truth oracle for detected-vs-declared accuracy.
    CycleDeclared,
}

impl FleetPolicy {
    /// Every policy, in the order benches and tables report them.
    pub const ALL: [FleetPolicy; 4] = [
        FleetPolicy::Fifo,
        FleetPolicy::SmallestWorkingSetFirst,
        FleetPolicy::CycleAware,
        FleetPolicy::CycleDeclared,
    ];

    /// Stable name used in digests, files and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FleetPolicy::Fifo => "fifo",
            FleetPolicy::SmallestWorkingSetFirst => "swsf",
            FleetPolicy::CycleAware => "cycle",
            FleetPolicy::CycleDeclared => "cycle-declared",
        }
    }

    /// Parses a policy name as accepted by the bench CLI.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(FleetPolicy::Fifo),
            "swsf" | "smallest-working-set-first" => Some(FleetPolicy::SmallestWorkingSetFirst),
            "cycle" | "cycle-aware" => Some(FleetPolicy::CycleAware),
            "cycle-declared" | "declared" => Some(FleetPolicy::CycleDeclared),
            _ => None,
        }
    }
}

/// Time-weighted average dirty rate of a declared phase cycle — the
/// denominator of the declared peak ratio, and the threshold below which
/// an instant counts as a declared trough for window-hit accounting.
pub fn cycle_average_rate(phases: &[jheap::mutator::Phase]) -> f64 {
    let total: f64 = phases.iter().map(|p| p.duration.as_secs_f64()).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let weighted: f64 = phases
        .iter()
        .map(|p| (p.profile.alloc_rate + p.profile.old_write_rate) * p.duration.as_secs_f64())
        .sum();
    (weighted / total).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in FleetPolicy::ALL {
            assert_eq!(FleetPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(
            FleetPolicy::parse("declared"),
            Some(FleetPolicy::CycleDeclared)
        );
        assert_eq!(FleetPolicy::parse("lifo"), None);
    }

    #[test]
    fn cycle_average_is_time_weighted() {
        use jheap::mutator::{MutatorProfile, Phase};
        use simkit::SimDuration;
        let phases = vec![
            Phase {
                duration: SimDuration::from_secs(2),
                profile: MutatorProfile {
                    alloc_rate: 90e6,
                    old_write_rate: 10e6,
                    ..MutatorProfile::quiet()
                },
            },
            Phase {
                duration: SimDuration::from_secs(6),
                profile: MutatorProfile {
                    alloc_rate: 10e6,
                    old_write_rate: 10e6,
                    ..MutatorProfile::quiet()
                },
            },
        ];
        // (100e6 * 2 + 20e6 * 6) / 8 = 40e6.
        let avg = cycle_average_rate(&phases);
        assert!((avg - 40e6).abs() < 1.0, "got {avg}");
    }
}
