//! Ordering policies: who migrates next when uplink capacity frees up.
//!
//! All three policies are deterministic functions of the roster and the
//! simulated guests' own state — no wall clock, no randomness — so a drain
//! under any policy is exactly reproducible from its seed.
//!
//! * [`FleetPolicy::Fifo`] admits in roster order with head-of-line
//!   blocking, the baseline every real orchestrator starts from.
//! * [`FleetPolicy::SmallestWorkingSetFirst`] probes each tenant's heap
//!   once at drain start and admits ascending by resident working set —
//!   the live-migration analogue of shortest-job-first.
//! * [`FleetPolicy::CycleAware`] defers tenants whose dirty rate is at a
//!   peak of their own cycle, after Baruchi et al. ("Improving virtual
//!   machine live migration via application-level workload analysis"),
//!   who showed that migrating a VM during its write-quiet phase can cut
//!   transferred bytes by a third or more. Tenants that *declare* their
//!   phase cycle answer exactly (the application-assisted route — the
//!   same philosophy as the paper's JVMTI agent, one level up); tenants
//!   that don't are probed black-box via a windowed dirty-rate EMA
//!   ([`DirtyRateProbe`]), which is Baruchi's original inference.

/// An ordering policy for the fleet scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// Roster order, head-of-line blocking.
    Fifo,
    /// One-time working-set probe at drain start, ascending.
    SmallestWorkingSetFirst,
    /// Defer tenants whose dirty rate is above their own running average.
    CycleAware,
}

impl FleetPolicy {
    /// Every policy, in the order benches and tables report them.
    pub const ALL: [FleetPolicy; 3] = [
        FleetPolicy::Fifo,
        FleetPolicy::SmallestWorkingSetFirst,
        FleetPolicy::CycleAware,
    ];

    /// Stable name used in digests, files and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FleetPolicy::Fifo => "fifo",
            FleetPolicy::SmallestWorkingSetFirst => "swsf",
            FleetPolicy::CycleAware => "cycle",
        }
    }

    /// Parses a policy name as accepted by the bench CLI.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(FleetPolicy::Fifo),
            "swsf" | "smallest-working-set-first" => Some(FleetPolicy::SmallestWorkingSetFirst),
            "cycle" | "cycle-aware" => Some(FleetPolicy::CycleAware),
            _ => None,
        }
    }
}

/// Time-weighted average dirty rate of a declared phase cycle — the
/// denominator of the application-assisted peak ratio: a tenant whose
/// *current* phase dirties faster than this average is at a peak.
pub fn cycle_average_rate(phases: &[jheap::mutator::Phase]) -> f64 {
    let total: f64 = phases.iter().map(|p| p.duration.as_secs_f64()).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let weighted: f64 = phases
        .iter()
        .map(|p| (p.profile.alloc_rate + p.profile.old_write_rate) * p.duration.as_secs_f64())
        .sum();
    (weighted / total).max(1.0)
}

/// Per-tenant dirty-rate tracking behind [`FleetPolicy::CycleAware`].
///
/// The scheduler samples each pending guest's cumulative written-page
/// counter at every admission opportunity; the ratio of the latest window
/// rate to an exponential moving average says whether the tenant is
/// currently above (peak) or below (trough) its own typical dirtying.
#[derive(Debug, Clone)]
pub struct DirtyRateProbe {
    /// EMA of observed dirty rates, bytes/second. Seeded from the
    /// workload's declared write rates so the first real window compares
    /// against a sane prior instead of zero.
    pub ema: f64,
    /// Most recent window's rate, bytes/second.
    pub last_rate: f64,
    /// Cumulative pages written at the last sample.
    pub last_pages_written: u64,
    /// When the last sample was taken, nanoseconds of guest time.
    pub last_sampled_ns: u64,
}

/// EMA smoothing factor: one third new observation, two thirds history —
/// responsive enough to see a phase flip within one probe window, inert
/// enough not to chase a single noisy sample.
const EMA_ALPHA: f64 = 1.0 / 3.0;

impl DirtyRateProbe {
    /// A probe seeded with a prior rate (the workload's declared
    /// allocation + old-generation write rate).
    pub fn with_prior(prior_rate: f64, pages_written: u64, now_ns: u64) -> Self {
        Self {
            ema: prior_rate.max(1.0),
            last_rate: prior_rate.max(1.0),
            last_pages_written: pages_written,
            last_sampled_ns: now_ns,
        }
    }

    /// Folds a new cumulative sample in; no-op when no time has passed.
    pub fn sample(&mut self, pages_written: u64, now_ns: u64, page_size: u64) {
        let dt_ns = now_ns.saturating_sub(self.last_sampled_ns);
        if dt_ns == 0 {
            return;
        }
        let bytes = pages_written.saturating_sub(self.last_pages_written) * page_size;
        let rate = bytes as f64 * 1e9 / dt_ns as f64;
        self.last_rate = rate;
        self.ema = EMA_ALPHA * rate + (1.0 - EMA_ALPHA) * self.ema;
        self.last_pages_written = pages_written;
        self.last_sampled_ns = now_ns;
    }

    /// How the latest window compares to the tenant's own typical rate:
    /// above 1.0 means a dirtying peak (defer), below means a trough
    /// (migrate now).
    pub fn peak_ratio(&self) -> f64 {
        self.last_rate / self.ema.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in FleetPolicy::ALL {
            assert_eq!(FleetPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(FleetPolicy::parse("lifo"), None);
    }

    #[test]
    fn cycle_average_is_time_weighted() {
        use jheap::mutator::{MutatorProfile, Phase};
        use simkit::SimDuration;
        let phases = vec![
            Phase {
                duration: SimDuration::from_secs(2),
                profile: MutatorProfile {
                    alloc_rate: 90e6,
                    old_write_rate: 10e6,
                    ..MutatorProfile::quiet()
                },
            },
            Phase {
                duration: SimDuration::from_secs(6),
                profile: MutatorProfile {
                    alloc_rate: 10e6,
                    old_write_rate: 10e6,
                    ..MutatorProfile::quiet()
                },
            },
        ];
        // (100e6 * 2 + 20e6 * 6) / 8 = 40e6.
        let avg = cycle_average_rate(&phases);
        assert!((avg - 40e6).abs() < 1.0, "got {avg}");
    }

    #[test]
    fn probe_flags_peaks_and_troughs() {
        // Prior of 10 MB/s; a window writing at ~40 MB/s is a peak.
        let mut p = DirtyRateProbe::with_prior(10e6, 0, 0);
        p.sample(10_000, 1_000_000_000, 4096); // 40.96 MB over 1 s
        assert!(p.peak_ratio() > 1.0, "burst window must read as a peak");
        // A near-idle window afterwards is a trough.
        p.sample(10_100, 2_000_000_000, 4096);
        assert!(p.peak_ratio() < 1.0, "quiet window must read as a trough");
    }

    #[test]
    fn probe_ignores_zero_width_windows() {
        let mut p = DirtyRateProbe::with_prior(5e6, 100, 50);
        let before = p.clone();
        p.sample(999, 50, 4096);
        assert_eq!(p.peak_ratio(), before.peak_ratio());
        assert_eq!(p.last_pages_written, before.last_pages_written);
    }
}
