//! Online workload-cycle detection over sensed dirty-rate series.
//!
//! The paper's thesis is that migration improves when the hypervisor can
//! *observe* the application; Baruchi et al. ("Exploiting Workload Cycles
//! for Orchestration of Virtual Machine Live Migrations in Clouds")
//! showed that the workload cycles worth timing a migration around can be
//! recovered from observed behavior alone — no tenant declaration
//! required. This module is that recovery: a deterministic detector over
//! the bounded dirty-rate rings the scheduler senses per pending VM
//! ([`simkit::telemetry::series::SampleSeries`]), emitting a
//! [`WorkloadEstimate`] the cycle-aware policy can schedule on.
//!
//! The detector is two-stage:
//!
//! 1. **Autocorrelation sweep.** For every candidate lag `L` in
//!    `[MIN_LAG, n/2]` samples, the normalized autocorrelation
//!    `r(L) = Σ (x_i - m)(x_{i+L} - m) / ((n-L)·σ²)` is computed; the
//!    best lag wins (ties to the smallest lag, so harmonics never beat
//!    the fundamental's first strong peak from below). Only lags past
//!    the autocorrelation's first below-zero dip are eligible — a real
//!    cycle anti-correlates at its half-period before peaking at the
//!    period, while a ramp or half-seen cycle decays monotonically and
//!    must not be mistaken for a fast cycle.
//! 2. **Spectral-peak fallback.** When the best autocorrelation is weak,
//!    a Goertzel-style single-bin DFT power is evaluated at each
//!    candidate period and the sharpest peak's share of total candidate
//!    power is used instead — square-ish cycles with drifting phase that
//!    smear the autocorrelation still concentrate spectral power near
//!    the true period.
//!
//! Confidence combines the peak strength with a *coverage* factor that
//! requires the window to span several full periods: one period observed
//! proves nothing, three earn full marks. Aperiodic or steady signals
//! come back as `None` / near-zero confidence, and the policy falls back
//! to smallest-working-set ordering — the detector degrades, it never
//! guesses.
//!
//! Everything here is pure `f64` arithmetic over the ring — no RNG, no
//! wall clock — so estimates are byte-deterministic across runs.

use simkit::telemetry::series::SampleSeries;

/// Fewest samples the detector will look at. At the scheduler's 500 ms
/// sensing cadence this is 8 s of history.
pub const MIN_SAMPLES: usize = 16;

/// Shortest candidate period, in samples (2 s at the default cadence);
/// anything faster is noise relative to migration timescales.
pub const MIN_LAG: usize = 4;

/// Coefficient-of-variation floor below which a signal is flat: there is
/// no cycle to detect in a steady workload, only noise to overfit.
const MIN_CV2: f64 = 0.05;

/// Autocorrelation peak below which the spectral fallback is consulted.
const WEAK_PEAK: f64 = 0.35;

/// Confidence at or above which the scheduler trusts an estimate enough
/// to schedule on it; below, the policy degrades to working-set order.
pub const CONFIDENCE_GATE: f64 = 0.45;

/// One detected workload cycle: the observatory's output record.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEstimate {
    /// Detected cycle period, nanoseconds.
    pub period_ns: u64,
    /// Position within the cycle at the newest sample, nanoseconds from
    /// the cycle's fold origin (`[0, period_ns)`).
    pub phase_ns: u64,
    /// How much to trust this estimate, `[0, 1]`.
    pub confidence: f64,
    /// The next predicted below-average dirty window, absolute simulated
    /// nanoseconds `[start, end)`. Starts at the query instant when the
    /// workload is already inside its trough.
    pub predicted_low_dirty_window: (u64, u64),
    /// Per-bin mean rates over one folded period (bin width = cadence).
    folded: Vec<f64>,
    /// Mean of the retained window the fold was computed from.
    mean: f64,
    /// Instant of the oldest retained sample: the fold's time origin.
    origin_ns: u64,
    /// Sample cadence, nanoseconds (bin width).
    cadence_ns: u64,
}

impl WorkloadEstimate {
    /// Predicted dirty rate at `at_ns` relative to the workload's own
    /// mean: below 1.0 means the folded cycle expects a trough there,
    /// above means a peak. This is the score the cycle-aware policy
    /// ranks pending tenants by.
    pub fn rate_ratio_at(&self, at_ns: u64) -> f64 {
        if self.mean <= 0.0 || self.folded.is_empty() {
            return 1.0;
        }
        self.folded[self.bin_at(at_ns)] / self.mean
    }

    /// Whether `at_ns` falls inside the folded cycle's below-average
    /// region.
    pub fn in_low_window(&self, at_ns: u64) -> bool {
        self.rate_ratio_at(at_ns) < 1.0
    }

    /// Nanoseconds from `at_ns` until the next below-average bin begins:
    /// zero when `at_ns` is already inside one. Scans the folded period
    /// at cadence granularity; a fold with no low bin (flat workload)
    /// also yields zero — there is no trough worth waiting for.
    pub fn ns_until_low_window(&self, at_ns: u64) -> u64 {
        if self.in_low_window(at_ns) {
            return 0;
        }
        let bins = self.folded.len() as u64;
        for k in 1..bins {
            let dt = k * self.cadence_ns;
            if self.in_low_window(at_ns + dt) {
                return dt;
            }
        }
        0
    }

    fn bin_at(&self, at_ns: u64) -> usize {
        let lag = self.folded.len() as u64;
        ((at_ns.saturating_sub(self.origin_ns) / self.cadence_ns) % lag) as usize
    }
}

/// Runs the detector over a sensed series.
///
/// `now_ns` anchors the predicted low-dirty window: the returned window
/// is the first trough at or after that instant. Returns `None` when the
/// ring holds fewer than [`MIN_SAMPLES`] samples, its cadence is
/// irregular (`cadence_ns == 0`), or the signal is too flat to carry a
/// cycle — callers treat `None` as confidence zero.
pub fn detect(series: &SampleSeries, now_ns: u64) -> Option<WorkloadEstimate> {
    let cadence = series.cadence_ns();
    let x: Vec<f64> = series.values().collect();
    let n = x.len();
    if cadence == 0 || n < MIN_SAMPLES {
        return None;
    }

    let mean = x.iter().sum::<f64>() / n as f64;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if var <= f64::EPSILON || var / (mean * mean).max(f64::EPSILON) < MIN_CV2 {
        return None; // steady workload: nothing to time a migration around
    }

    // Stage 1: normalized autocorrelation sweep, smallest winning lag.
    //
    // A genuine cycle's autocorrelation first *dips* below zero (the
    // anti-phase half-period) before peaking again at the period. A
    // merely slowly-varying signal — the long lead trough of a cycle the
    // window has not yet covered, a ramp, a one-off step — decays
    // monotonically from lag zero instead, and an ungated sweep would
    // hand its largest small-lag value over as a phantom 2 s cycle at
    // full coverage. So the sweep only considers peak candidates after
    // the first below-zero dip; no dip, no autocorrelation peak.
    let max_lag = n / 2;
    let r_at = |lag: usize| {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += (x[i] - mean) * (x[i + lag] - mean);
        }
        acc / ((n - lag) as f64 * var)
    };
    let dip = (1..=max_lag).find(|&lag| r_at(lag) < 0.0);
    let mut best_lag = MIN_LAG;
    let mut best_r = f64::NEG_INFINITY;
    if let Some(dip) = dip {
        for lag in (dip + 1).max(MIN_LAG)..=max_lag {
            let r = r_at(lag);
            if r > best_r {
                best_r = r;
                best_lag = lag;
            }
        }
    }

    let mut strength = best_r.clamp(0.0, 1.0);
    if best_r < WEAK_PEAK {
        // Stage 2: single-bin DFT power per candidate period; the peak's
        // share of total candidate power stands in for the correlation.
        let mut powers: Vec<(usize, f64)> = Vec::with_capacity(max_lag + 1 - MIN_LAG);
        let mut total = 0.0;
        for lag in MIN_LAG..=max_lag {
            let w = std::f64::consts::TAU / lag as f64;
            let (mut re, mut im) = (0.0, 0.0);
            for (i, v) in x.iter().enumerate() {
                let centered = v - mean;
                re += centered * (w * i as f64).cos();
                im += centered * (w * i as f64).sin();
            }
            let p = re * re + im * im;
            powers.push((lag, p));
            total += p;
        }
        if total > 0.0 {
            let &(spec_lag, spec_p) = powers
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("powers are finite"))
                .expect("candidate lags are non-empty");
            let spec_strength = (spec_p / total).clamp(0.0, 1.0);
            if spec_strength > strength {
                strength = spec_strength;
                best_lag = spec_lag;
            }
        }
    }

    // Coverage: one observed period proves nothing, three earn full
    // confidence. This is what keeps a half-seen "cycle" from being
    // trusted — a drifting or shifted workload re-earns trust slowly.
    let periods = n as f64 / best_lag as f64;
    let coverage = ((periods - 1.0) / 2.0).clamp(0.0, 1.0);
    let confidence = strength * coverage;

    // Fold the window modulo the winning lag into per-bin means. Bins are
    // anchored to the oldest retained sample so the fold (and everything
    // derived from it) is a pure function of the ring's contents.
    let origin_ns = series.start_ns();
    let mut folded = vec![0.0; best_lag];
    let mut counts = vec![0u32; best_lag];
    for (i, v) in x.iter().enumerate() {
        folded[i % best_lag] += v;
        counts[i % best_lag] += 1;
    }
    for (f, c) in folded.iter_mut().zip(&counts) {
        *f /= (*c).max(1) as f64;
    }

    // The predicted low-dirty window: the longest circular run of
    // below-mean bins, projected to the first occurrence at/after now_ns.
    let low: Vec<bool> = folded.iter().map(|&f| f < mean).collect();
    let (run_start, run_len) = longest_circular_run(&low);
    let period_ns = best_lag as u64 * cadence;
    let est = WorkloadEstimate {
        period_ns,
        phase_ns: (now_ns.saturating_sub(origin_ns)) % period_ns,
        confidence,
        predicted_low_dirty_window: (0, 0),
        folded,
        mean,
        origin_ns,
        cadence_ns: cadence,
    };
    let window = if run_len == 0 {
        (now_ns, now_ns)
    } else {
        let lag = best_lag as u64;
        let now_idx = now_ns.saturating_sub(origin_ns) / cadence;
        let pos = now_idx % lag;
        let (a, len) = (run_start as u64, run_len as u64);
        // Distance (in bins) from the current position to the run start;
        // 0 when we are already inside the run.
        let into_run = (pos + lag - a) % lag;
        let start_idx = if into_run < len {
            now_idx // already inside the trough
        } else {
            now_idx + ((a + lag - pos) % lag)
        };
        let remaining = if into_run < len { len - into_run } else { len };
        (
            origin_ns + start_idx * cadence,
            origin_ns + (start_idx + remaining) * cadence,
        )
    };
    Some(WorkloadEstimate {
        predicted_low_dirty_window: window,
        ..est
    })
}

/// Longest run of `true` in a circular boolean sequence: `(start, len)`.
/// Ties go to the smallest start index; all-false yields `(0, 0)`.
fn longest_circular_run(flags: &[bool]) -> (usize, usize) {
    let n = flags.len();
    if n == 0 || flags.iter().all(|&f| !f) {
        return (0, 0);
    }
    if flags.iter().all(|&f| f) {
        return (0, n);
    }
    let mut best = (0usize, 0usize);
    let mut i = 0;
    while i < n {
        if flags[i] && !flags[(i + n - 1) % n] {
            // Run starts here; walk it (possibly wrapping).
            let mut len = 0;
            while len < n && flags[(i + len) % n] {
                len += 1;
            }
            if len > best.1 {
                best = (i, len);
            }
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAD: u64 = 500_000_000; // 500 ms in ns

    fn series_from(values: &[f64]) -> SampleSeries {
        let mut s = SampleSeries::new(CAD, 256);
        for (i, &v) in values.iter().enumerate() {
            s.push(i as u64 * CAD, v);
        }
        s
    }

    /// 12-sample period: 6 high, 6 low — the cyclic roster's shape.
    fn square_wave(cycles: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            out.extend(std::iter::repeat_n(60e6, 6));
            out.extend(std::iter::repeat_n(3e6, 6));
        }
        out
    }

    #[test]
    fn square_wave_detects_period_with_high_confidence() {
        let s = series_from(&square_wave(4)); // 48 samples = 4 periods
        let now = 47 * CAD;
        let est = detect(&s, now).expect("clear cycle must be detected");
        assert_eq!(est.period_ns, 12 * CAD, "period is 12 samples");
        assert!(
            est.confidence >= CONFIDENCE_GATE,
            "4 observed periods must clear the gate, got {}",
            est.confidence
        );
        // The predicted window is a real trough: every instant inside it
        // folds to a below-mean bin.
        let (ws, we) = est.predicted_low_dirty_window;
        assert!(we > ws, "window must be non-empty");
        assert!(ws >= now, "window must not start in the past");
        let mut t = ws;
        while t < we {
            assert!(est.in_low_window(t), "t={t} inside window must be low");
            t += CAD;
        }
    }

    #[test]
    fn short_series_and_irregular_cadence_yield_none() {
        let s = series_from(&square_wave(1)[..12]);
        assert!(detect(&s, 0).is_none(), "12 samples < MIN_SAMPLES");
        let mut irregular = SampleSeries::new(0, 64);
        for (i, v) in square_wave(4).into_iter().enumerate() {
            irregular.push(i as u64, v);
        }
        assert!(detect(&irregular, 0).is_none(), "event series undetectable");
    }

    #[test]
    fn steady_signal_yields_none() {
        let s = series_from(&vec![20e6; 64]);
        assert!(detect(&s, 0).is_none(), "flat signal has no cycle");
        // Small jitter around a mean is still flat by CV².
        let jitter: Vec<f64> = (0..64).map(|i| 20e6 + (i % 2) as f64 * 1e5).collect();
        assert!(detect(&series_from(&jitter), 0).is_none());
    }

    #[test]
    fn drifting_period_lowers_confidence_below_clean_cycle() {
        // Burst/trough pairs whose width grows every repetition: 4,5,6,7,8
        // samples per half-phase — no stable period.
        let mut drifting = Vec::new();
        for w in 4..=8usize {
            drifting.extend(std::iter::repeat_n(60e6, w));
            drifting.extend(std::iter::repeat_n(3e6, w));
        }
        let drift_conf = detect(&series_from(&drifting), 0)
            .map(|e| e.confidence)
            .unwrap_or(0.0);
        let clean_conf = detect(&series_from(&square_wave(5)), 0)
            .expect("clean cycle detected")
            .confidence;
        assert!(
            drift_conf < clean_conf,
            "drift ({drift_conf}) must trust less than clean ({clean_conf})"
        );
    }

    #[test]
    fn aperiodic_signal_stays_below_the_gate() {
        // Deterministic irregular on/off pattern with no repeating lag.
        let widths = [3usize, 9, 4, 11, 2, 8, 5, 12, 3, 7];
        let mut vals = Vec::new();
        for (k, &w) in widths.iter().enumerate() {
            let level = if k % 2 == 0 { 55e6 } else { 2e6 };
            vals.extend(std::iter::repeat_n(level, w));
        }
        let conf = detect(&series_from(&vals), 0)
            .map(|e| e.confidence)
            .unwrap_or(0.0);
        assert!(
            conf < CONFIDENCE_GATE,
            "aperiodic signal must not clear the gate, got {conf}"
        );
    }

    #[test]
    fn half_seen_cycle_step_is_not_trusted() {
        // Twenty trough samples then six burst samples: the lead trough
        // of a cycle much longer than the window. The autocorrelation of
        // a step decays monotonically — without dip-gating the sweep
        // would report a confident phantom 2 s cycle here.
        let mut vals = vec![2e6; 20];
        vals.extend(std::iter::repeat_n(60e6, 6));
        let conf = detect(&series_from(&vals), 0)
            .map(|e| e.confidence)
            .unwrap_or(0.0);
        assert!(
            conf < CONFIDENCE_GATE,
            "a step is not a cycle; got confidence {conf}"
        );
    }

    #[test]
    fn one_observed_period_earns_no_confidence() {
        // 16 samples of an 8-sample cycle: exactly two periods -> coverage
        // (2-1)/2 = 0.5; a single period would be 0.
        let mut vals = Vec::new();
        for _ in 0..2 {
            vals.extend(std::iter::repeat_n(60e6, 4));
            vals.extend(std::iter::repeat_n(3e6, 4));
        }
        let est = detect(&series_from(&vals), 0).expect("two periods detected");
        assert!(est.confidence <= 0.55, "coverage must cap early trust");
    }

    #[test]
    fn estimates_are_byte_deterministic() {
        let a = detect(&series_from(&square_wave(4)), 5 * CAD).unwrap();
        let b = detect(&series_from(&square_wave(4)), 5 * CAD).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }

    #[test]
    fn longest_circular_run_handles_wrap() {
        assert_eq!(longest_circular_run(&[true, false, true, true]), (2, 3));
        assert_eq!(longest_circular_run(&[false, false, false]), (0, 0));
        assert_eq!(longest_circular_run(&[true, true]), (0, 2));
        assert_eq!(
            longest_circular_run(&[false, true, true, false, true]),
            (1, 2)
        );
    }
}
