//! The event-driven evacuation core: drain hosts H₁..Hₙ onto destinations
//! D₁..Dₘ over topology T.
//!
//! This is the cluster-scale generalisation of the single-host drain. Each
//! guest still runs as an independent simulation on its own [`SimClock`];
//! what changed is *how the scheduler finds the next session to step*. The
//! old core re-scanned every active session per iteration (O(active) per
//! step). This core keeps a binary heap of session-ready times keyed by
//! `(SimTime, VmId)`: pop the minimum, step that session once, push it
//! back at its new clock. O(log active) per step, and the key order makes
//! tie-breaking explicit — equal clocks resolve by `VmId` (host-major,
//! then roster slot), exactly the tie order the scan used.
//!
//! # Why the heap is equivalent to the laggard scan
//!
//! The scan picked `min_by_key((clock, slot))` over active sessions. The
//! heap pops the same minimum provided every active session has exactly
//! one entry carrying its *current* clock. That invariant holds by
//! construction: an entry is pushed at admission (with the post-`begin`
//! clock) and re-pushed after every yielded step (with the post-step
//! clock); nothing else advances an active session's clock — the
//! catch-up/sensing path only ever touches *pending* slots, and a
//! completed session leaves the heap by simply not being re-pushed. So
//! pop-min ≡ scan-min at every iteration, and the event-driven drain is
//! byte-identical to the stepped baseline (locked by
//! `tests/evacuation.rs` against the committed drain12 digest).
//!
//! Admission, sensing, re-rating and per-VM digest folding are untouched;
//! they moved here from `cluster::sched` verbatim. The admission sweep
//! runs once at drain start and again after every completion — the only
//! two moments its outcome can change, since feasibility is a function of
//! link subscriptions alone, and the fleet clock only advances on
//! completion.
//!
//! # Topology and placement
//!
//! Flows ride a [`Topology`] instead of a bare uplink: the source host's
//! NIC, an optional contended core switch, and — when the plan has
//! destinations — the chosen destination's ingress NIC. A flow's rate is
//! its bottleneck hop's fair share; over the degenerate one-host,
//! no-core, no-destination topology that *is* the NIC share bit for bit,
//! which is how [`run_fleet`](crate::sched::run_fleet) stays a thin
//! adapter over this core without moving a single digest byte.
//! Destinations are chosen at admission by the plan's
//! [`PlacementPolicy`](crate::place::PlacementPolicy) and consumed
//! permanently (a placed VM stays placed).
//!
//! A drain must never deadlock, and an evacuation must never deadlock on
//! placement either: [`EvacuationPlan::validate`] requires destination
//! slots for the whole evacuating population, so whenever the fabric goes
//! idle there is both a feasible path (the idle-path clause) and a free
//! slot — every pending VM is eventually admitted, and the event loop
//! terminates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use javmm::host::HostSpec;
use javmm::vm::JavaVm;
use migrate::digest::{DigestMeta, FleetDigest, FleetMeta, FleetVmEntry, HistMerger, RunDigest};
use migrate::error::{ConfigError, MigrateError};
use migrate::precopy::{MigrationSession, PrecopyEngine, SessionStep};
use migrate::report::MigrationReport;
use migrate::sla::SlaCost;
use netsim::topology::{LinkSpec, PipeSel, Topology};
use netsim::{FlowId, PipeTimelines};
use simkit::telemetry::{CausalId, CausalKind, CausalLog, Recorder, SampleSeries, Subsystem};
use simkit::units::Bandwidth;
use simkit::{SimClock, SimDuration, SimTime};

use crate::detect::{detect, WorkloadEstimate, CONFIDENCE_GATE};
use crate::eta::{self, EtaSummary, EtaTracker, Watchdog, WatchdogFinding, WIRE_PAGE_BYTES};
use crate::place::{self, DestState, PlacementPolicy};
use crate::policy::{cycle_average_rate, FleetPolicy};
use crate::sched::FleetRowSink;

pub use javmm::host::DestSpec;

/// Identifies one VM in an evacuation: host index, then roster slot.
///
/// The derived order is the event queue's tie-break — sessions whose
/// clocks collide step in host-major, then roster order, the same order
/// the single-host laggard scan used for its slot tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId {
    /// Index into the plan's source hosts.
    pub host: u32,
    /// Roster slot within that host.
    pub slot: u32,
}

/// The scheduler's ready queue: session wake-ups ordered by
/// `(SimTime, VmId)`, minimum first.
///
/// Public so the tie-order invariant is testable in isolation (see the
/// proptest in `tests/evacuation.rs`): popping never reorders entries
/// with equal times away from `VmId` order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, VmId)>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `vm` to step when the fleet reaches `at`.
    pub fn push(&mut self, at: SimTime, vm: VmId) {
        self.heap.push(Reverse((at, vm)));
    }

    /// The earliest entry: smallest time, ties by smallest `VmId`.
    pub fn pop(&mut self) -> Option<(SimTime, VmId)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A whole evacuation: which hosts drain, where their VMs may land, and
/// what fabric the traffic crosses.
#[derive(Debug, Clone)]
pub struct EvacuationPlan {
    /// Plan name, used in bench output.
    pub name: String,
    /// Hosts being drained, each a complete single-host drain problem.
    pub sources: Vec<HostSpec>,
    /// Destination pool; empty means "drain into the void" (the
    /// degenerate single-host mode, where only the egress NIC exists).
    pub destinations: Vec<DestSpec>,
    /// The core switch every flow crosses, or `None` for an uncontended
    /// fabric (and always `None` in degenerate mode).
    pub core: Option<LinkSpec>,
    /// How destinations are chosen at admission.
    pub placement: PlacementPolicy,
    /// CI drill switch: when set, the ETA estimator re-serves each VM's
    /// admission-time projection at every wakeup instead of re-projecting,
    /// so the calibration numbers in the eta digest degrade and the gate
    /// must trip. Never affects the drain itself.
    pub freeze_eta: bool,
    /// Seeded mid-drain pipe degrades, in schedule order. Empty for a
    /// fault-free fabric; entries naming pipes the fabric does not have
    /// (no core, NIC index out of range) are inert.
    pub pipe_faults: Vec<PipeFault>,
}

/// A seeded mid-drain degrade of the plan's core switch: the historical
/// special case of [`PipeFault`], kept as the convenience spelling for
/// the most common drill. [`EvacuationPlan::core_fault`] converts it to a
/// [`PipeFault`] on [`PipeSel::Core`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreFault {
    /// Delay from the earliest drain start to the degrade.
    pub after: SimDuration,
    /// Multiplier applied to the core's rate (e.g. `0.25`).
    pub factor: f64,
}

/// A seeded mid-drain degrade of one fabric pipe — a source NIC, the core
/// trunk, or a destination ingress NIC (WAN or LAN): `after` into the
/// drain (measured from the earliest host's drain start), the selected
/// pipe's rate is multiplied by `factor`. In-flight flows crossing the
/// pipe see the new bottleneck at their next wakeup through the ordinary
/// re-grant path — no special casing, and an empty schedule changes
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeFault {
    /// Which pipe of the plan's topology degrades.
    pub pipe: PipeSel,
    /// Delay from the earliest drain start to the degrade.
    pub after: SimDuration,
    /// Multiplier applied to the pipe's rate (e.g. `0.25`).
    pub factor: f64,
}

impl EvacuationPlan {
    /// A destination-less plan draining `sources` with greedy placement
    /// (irrelevant until destinations are added).
    pub fn new(name: impl Into<String>, sources: Vec<HostSpec>) -> Self {
        Self {
            name: name.into(),
            sources,
            destinations: Vec::new(),
            core: None,
            placement: PlacementPolicy::Greedy,
            freeze_eta: false,
            pipe_faults: Vec::new(),
        }
    }

    /// The degenerate plan [`run_fleet`](crate::sched::run_fleet) adapts
    /// through: one source, no destinations, no core switch.
    pub fn single_host(host: HostSpec) -> Self {
        Self::new(host.name.clone(), vec![host])
    }

    /// Adds the destination pool.
    pub fn destinations(mut self, destinations: Vec<DestSpec>) -> Self {
        self.destinations = destinations;
        self
    }

    /// Adds a contended core switch.
    pub fn core(mut self, core: LinkSpec) -> Self {
        self.core = Some(core);
        self
    }

    /// Sets the placement policy.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Freezes ETA projections at admission (the CI calibration drill).
    pub fn freeze_eta(mut self, freeze: bool) -> Self {
        self.freeze_eta = freeze;
        self
    }

    /// Seeds a mid-drain core degrade (sugar for a [`PipeFault`] on
    /// [`PipeSel::Core`]).
    pub fn core_fault(self, fault: CoreFault) -> Self {
        self.pipe_fault(PipeFault {
            pipe: PipeSel::Core,
            after: fault.after,
            factor: fault.factor,
        })
    }

    /// Appends a mid-drain pipe degrade to the fault schedule.
    pub fn pipe_fault(mut self, fault: PipeFault) -> Self {
        self.pipe_faults.push(fault);
        self
    }

    /// Total VMs across all source hosts.
    pub fn population(&self) -> usize {
        self.sources.iter().map(|h| h.tenants.len()).sum()
    }

    /// Checks the whole plan: every source host's invariants
    /// ([`HostSpec::validate`]), every destination's, and — when a
    /// destination pool exists — that its slots can hold the entire
    /// evacuating population (otherwise the drain would deadlock with
    /// unplaceable VMs).
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sources.is_empty() {
            return Err(ConfigError::EmptyRoster);
        }
        for host in &self.sources {
            host.validate()?;
        }
        for dest in &self.destinations {
            dest.validate()?;
        }
        if !self.destinations.is_empty() {
            let slots: u64 = self.destinations.iter().map(|d| u64::from(d.slots)).sum();
            if slots < self.population() as u64 {
                return Err(ConfigError::InsufficientDestinationCapacity);
            }
        }
        Ok(())
    }

    /// The fabric this plan's flows cross.
    fn topology(&self) -> Topology {
        Topology::new(
            self.sources
                .iter()
                .map(|h| LinkSpec::lan(h.name.clone(), h.uplink))
                .collect(),
            self.core.clone(),
            self.destinations
                .iter()
                .map(|d| {
                    if d.wan {
                        LinkSpec::wan(d.name.clone(), d.ingress)
                    } else {
                        LinkSpec::lan(d.name.clone(), d.ingress)
                    }
                })
                .collect(),
        )
    }
}

/// Where one VM ended up, in fleet-wide admission order.
#[derive(Debug, Clone)]
pub struct VmPlacement {
    /// Source host index in the plan.
    pub source: usize,
    /// Roster slot on the source host.
    pub slot: usize,
    /// Tenant name.
    pub vm: String,
    /// Destination index, `None` in degenerate (destination-less) mode.
    pub dest: Option<usize>,
    /// Destination name, `None` in degenerate mode.
    pub dest_name: Option<String>,
    /// The chosen destination's estimated SLA cost at decision time
    /// ([`place::sla_score`], lower is better); `None` in degenerate mode.
    pub chosen_score: Option<f64>,
    /// Name of the cheapest feasible alternative at decision time, when
    /// another candidate existed.
    pub runner_up: Option<String>,
    /// The runner-up's estimated SLA cost.
    pub runner_up_score: Option<f64>,
}

/// Everything one evacuation produces.
#[derive(Debug)]
pub struct EvacOutcome {
    /// One byte-deterministic digest per source host, in plan order.
    pub hosts: Vec<FleetDigest>,
    /// Placement decisions in fleet-wide admission order.
    pub placements: Vec<VmPlacement>,
    /// Fleet-wide eviction time: from the earliest host's drain start to
    /// the last migration's end, in nanoseconds.
    pub eviction_ns: u64,
    /// Summed SLA cost across every migrated VM.
    pub sla_total: SlaCost,
    /// Per-VM reports in roster order, one vector per source host (empty
    /// when streamed).
    pub reports: Vec<Vec<MigrationReport>>,
    /// The drain's mission-control record: the causal flow trace, pipe
    /// timelines, ETA calibration and watchdog findings. Derived state
    /// only — nothing in here feeds the host digests, so the committed
    /// digest baselines are untouched by its existence.
    pub mission: MissionControl,
}

/// Observability record of one evacuation: everything mission control
/// needs to replay *why* the drain unfolded the way it did.
#[derive(Debug)]
pub struct MissionControl {
    /// The causal event log: admissions, placements, wakeups, re-grants,
    /// completions, faults and findings, chained parent→child.
    pub causal: CausalLog,
    /// Per-pipe utilization and queued-demand timelines.
    pub pipes: PipeTimelines,
    /// ETA calibration summary (the CI-gated numbers).
    pub eta: EtaSummary,
    /// SLO watchdog findings, in firing order.
    pub findings: Vec<WatchdogFinding>,
}

/// Runs an evacuation under `policy` (the per-host admission-order
/// policy; destination choice is the plan's placement policy).
///
/// # Errors
///
/// An invalid plan ([`EvacuationPlan::validate`]) or the first
/// [`MigrateError`] any tenant's engine raises.
pub fn evacuate(plan: &EvacuationPlan, policy: FleetPolicy) -> Result<EvacOutcome, MigrateError> {
    drain_evacuation(plan, policy, None, true)
}

/// Like [`evacuate`], but streams per-VM digest rows to `sink` in
/// completion order and drops the heavy reports.
///
/// # Errors
///
/// Same as [`evacuate`].
pub fn evacuate_streamed(
    plan: &EvacuationPlan,
    policy: FleetPolicy,
    sink: &mut dyn FleetRowSink,
) -> Result<EvacOutcome, MigrateError> {
    drain_evacuation(plan, policy, Some(sink), false)
}

/// One guest's slot in the drain.
struct Slot {
    tenant: javmm::host::VmTenant,
    vm: JavaVm,
    clock: SimClock,
    active: Option<Active>,
    admitted_at: Option<SimTime>,
    /// The dirty-rate sensor: pages/second sampled on the sense cadence
    /// while the tenant waits for admission.
    sensor: SampleSeries,
    sensor_last_pages: u64,
    sensor_next_at: SimTime,
    /// Detection facts frozen at admission (digest fields).
    detected_period_ns: u64,
    detected_confidence: f64,
    detect_confident: bool,
    declared_period_ns: u64,
    window_hit: Option<bool>,
    entry: Option<FleetVmEntry>,
    report: Option<MigrationReport>,
    /// Working set measured at admission; the ETA projection's remaining
    /// bytes until the first iteration reports a real dirty set.
    ws_bytes: u64,
    /// The observatory estimate frozen at admission, for the ETA
    /// projection's dirty-rate model.
    estimate: Option<WorkloadEstimate>,
    /// Index into the mission's ETA tracker and watchdog registries;
    /// `usize::MAX` until admitted.
    mission_vm: usize,
    /// The VM's newest causal event, parent of whatever happens next.
    last_causal: Option<CausalId>,
}

struct Active {
    session: MigrationSession,
    flow: FlowId,
    /// Rate last applied to the session's link; re-rating is skipped when
    /// the flow rate is unchanged so a sole subscriber's link state is
    /// never touched (golden equivalence).
    applied: Bandwidth,
}

impl Slot {
    /// Runs the guest up to `target` fleet time (workloads keep executing
    /// — and dirtying — while they wait for admission), sampling the
    /// page-write rate into the sensor at every cadence crossing.
    fn catch_up(&mut self, target: SimTime, tick: SimDuration, cadence: SimDuration) {
        while self.clock.now() < target {
            let until = self.sensor_next_at.min(target);
            let lag = until.saturating_since(self.clock.now());
            if !lag.is_zero() {
                self.vm.run_for(&mut self.clock, lag, tick);
            }
            if self.clock.now() >= self.sensor_next_at {
                let now = self.clock.now();
                let pages = self.vm.jvm().stats().pages_written;
                let rate = (pages - self.sensor_last_pages) as f64 / cadence.as_secs_f64();
                self.sensor.push(now.as_nanos(), rate);
                self.sensor_last_pages = pages;
                self.sensor_next_at = now + cadence;
            }
        }
    }
}

/// One source host's drain state.
struct HostState {
    spec: HostSpec,
    slots: Vec<Slot>,
    /// Admission queue in the policy's static order.
    pending: Vec<usize>,
    drain_start: SimTime,
    rec: Recorder,
    merger: HistMerger,
}

/// Ring capacity of each pipe timeline: enough to retain a whole 48-VM
/// evacuation's wakeup-driven samples.
const PIPE_SERIES_CAP: usize = 4096;

/// The drain's live mission-control state. All of it is *derived*: it
/// observes the drain without feeding anything back into scheduling,
/// re-rating or the recorders, which is what keeps the committed digest
/// baselines byte-identical.
struct Mission {
    causal: CausalLog,
    pipes: PipeTimelines,
    eta: EtaTracker,
    watchdog: Watchdog,
    /// Instant of the newest pipe sample; `None` before the first wakeup.
    last_sample_at: Option<SimTime>,
    /// Pending pipe degrades as `(trigger instant, pipe, factor)`, in
    /// schedule order; each is consumed when it fires.
    pipe_faults: Vec<(SimTime, PipeSel, f64)>,
    /// Per-host drain-root causal events, parents of every admission.
    host_roots: Vec<CausalId>,
}

impl Mission {
    /// Emits a causal `finding` event for every watchdog finding appended
    /// since `from`, parented on the wakeup that observed it.
    fn emit_findings_since(&mut self, from: usize) {
        for i in from..self.watchdog.findings().len() {
            let f = &self.watchdog.findings()[i];
            self.causal.emit(
                f.at_ns,
                CausalKind::Finding,
                Some(f.causal),
                f.subject.clone(),
                vec![("rule", f.rule.to_string()), ("evidence", f.detail.clone())],
            );
        }
    }
}

pub(crate) fn drain_evacuation(
    plan: &EvacuationPlan,
    policy: FleetPolicy,
    mut sink: Option<&mut dyn FleetRowSink>,
    keep_reports: bool,
) -> Result<EvacOutcome, MigrateError> {
    plan.validate().map_err(MigrateError::Config)?;
    let mut topo = plan.topology();
    let mut dests: Vec<DestState> = plan
        .destinations
        .iter()
        .cloned()
        .map(DestState::new)
        .collect();

    // Boot every host: warm its guests on their own clocks, stamp its
    // drain-begin instant, seed its admission queue.
    let mut hosts: Vec<HostState> = plan
        .sources
        .iter()
        .map(|spec| boot_host(spec, policy))
        .collect();

    // The fleet-wide clock: admissions are stamped with it, and it only
    // advances when a migration completes. Starts at the latest host's
    // drain start (for one host: its drain start, as before).
    let mut fleet_now = hosts
        .iter()
        .map(|h| h.drain_start)
        .max()
        .expect("validated plan has sources");
    let global_start = hosts
        .iter()
        .map(|h| h.drain_start)
        .min()
        .expect("validated plan has sources");

    let mut queue = EventQueue::new();
    let mut placements: Vec<VmPlacement> = Vec::new();
    let mut sla_total = SlaCost::ZERO;
    let mut last_end = global_start;

    let mut mission = Mission {
        causal: CausalLog::new(),
        pipes: PipeTimelines::for_topology(&topo, PIPE_SERIES_CAP),
        eta: EtaTracker::new(plan.freeze_eta),
        watchdog: Watchdog::new(),
        last_sample_at: None,
        pipe_faults: plan
            .pipe_faults
            .iter()
            .map(|f| (global_start + f.after, f.pipe, f.factor))
            .collect(),
        host_roots: Vec::with_capacity(hosts.len()),
    };
    // Root every host's causal chain at its drain-begin instant.
    for host in &hosts {
        let root = mission.causal.emit(
            host.drain_start.as_nanos(),
            CausalKind::Drain,
            None,
            host.spec.name.clone(),
            vec![("tenants", host.slots.len().to_string())],
        );
        mission.host_roots.push(root);
    }

    // Initial admission sweep, hosts in plan order.
    for (h, host) in hosts.iter_mut().enumerate() {
        admit_host(
            plan,
            policy,
            h,
            host,
            &mut topo,
            &mut dests,
            fleet_now,
            &mut placements,
            &mut queue,
            &mut mission,
        )?;
    }

    while let Some((at, vmid)) = queue.pop() {
        // Seeded pipe degrades fire at the first wakeup past their
        // trigger, in schedule order; in-flight flows pick the new
        // bottleneck up through the ordinary re-grant below. A fault on a
        // pipe the fabric does not have is consumed silently.
        while let Some(idx) = mission.pipe_faults.iter().position(|(t, _, _)| at >= *t) {
            let (_, pipe, factor) = mission.pipe_faults.remove(idx);
            let Some(base) = topo.pipe_rate(pipe) else {
                continue;
            };
            let degraded = Bandwidth::from_bytes_per_sec(base.bytes_per_sec() * factor);
            topo.set_pipe_rate(pipe, degraded);
            let pipe_name = topo
                .pipe_name(pipe)
                .map_or_else(|| pipe.label(), str::to_string);
            // The historical core drill keeps its causal tag; NIC and
            // ingress degrades get the generic one.
            let tag = if pipe == PipeSel::Core {
                "core_degrade"
            } else {
                "pipe_degrade"
            };
            mission.causal.emit(
                at.as_nanos(),
                CausalKind::Fault,
                None,
                pipe_name,
                vec![
                    ("fault", tag.to_string()),
                    ("pipe", pipe.label()),
                    ("factor", format!("{factor}")),
                    ("rate_bps", format!("{:.0}", degraded.bytes_per_sec())),
                ],
            );
        }

        let host = &mut hosts[vmid.host as usize];
        let slot = &mut host.slots[vmid.slot as usize];
        let active = slot.active.as_mut().expect("queued session is active");
        let at_ns = at.as_nanos();

        // Re-rate to the flow's current bottleneck share; skipped when
        // unchanged so a sole subscriber's link is never touched.
        let share = topo.flow_rate(active.flow);

        // Project this VM's landing from its current state: remaining
        // work is the newest iteration's re-dirty set (the working set
        // before the first iteration reports one), the dirty-rate model
        // is the observatory estimate when it cleared the confidence gate
        // (sensed mean modulated by the cycle's ratio at this instant),
        // else the freshest observed per-iteration rate.
        let iters = active.session.iterations();
        // Measured protocol shrink, from the newest completed iterations:
        // wire bytes per to-send page (compression and within-iteration
        // skips) and the dirty->send survival ratio (transfer-bitmap
        // consultation and re-dirty coalescing shrink the dirty set before
        // it reaches the wire). Projecting raw dirty bytes without these
        // runs 2-3x late.
        let wire_per_page = match iters.last() {
            Some(last) if last.pages_to_send > 0 => {
                last.bytes_sent as f64 / last.pages_to_send as f64
            }
            _ => WIRE_PAGE_BYTES,
        };
        let survival = match iters.len() {
            n if n >= 2 && iters[n - 2].pages_dirtied_during > 0 => {
                (iters[n - 1].pages_to_send as f64 / iters[n - 2].pages_dirtied_during as f64)
                    .clamp(0.05, 1.0)
            }
            // One completed iteration: no dirty->send pair yet, so borrow
            // that iteration's own sent fraction — the transfer-bitmap
            // skip rate is roughly stationary across iterations.
            1 if iters[0].pages_to_send > 0 => {
                (iters[0].pages_sent as f64 / iters[0].pages_to_send as f64).clamp(0.05, 1.0)
            }
            // No measurement yet (admission): fall back to the fleet
            // prior rather than charging the full raw dirty rate.
            _ => eta::ADMISSION_SHRINK_PRIOR,
        };
        // The session's own pending set (the dirty snapshot intersected
        // with the transfer bitmap) is the exact next transfer set — no
        // estimate needed. Before the first iteration that set is the
        // whole address space minus whatever the daemon has already
        // marked skippable.
        let remaining_bytes =
            active.session.pending_transferable_pages(&slot.vm) as f64 * wire_per_page;
        let est = if slot.detect_confident {
            slot.estimate.as_ref()
        } else {
            None
        };
        let dirty_pps = match (est, iters.last()) {
            (Some(est), _) => slot.sensor.mean() * est.rate_ratio_at(at_ns),
            (None, Some(last)) if !last.duration.is_zero() => {
                last.pages_dirtied_during as f64 / last.duration.as_secs_f64()
            }
            _ => slot.sensor.mean(),
        };
        let dirty_bps = dirty_pps * WIRE_PAGE_BYTES;
        let max_iters = slot.tenant.migration.stop.max_iterations;
        let iters_left = max_iters.saturating_sub(iters.len() as u32);
        // The ETA dirty term wants the mean rate the projection should
        // modulate: the observatory mean when a confident cycle estimate
        // exists (the projection applies the cycle's ratio itself), else
        // the freshest per-iteration rate — the long-run sensor mean
        // still remembers the first iteration's cold-start dirtying and
        // runs hot for workloads that have settled.
        let eta_mean_pps = match (est, iters.last()) {
            (None, Some(last)) if !last.duration.is_zero() => {
                last.pages_dirtied_during as f64 / last.duration.as_secs_f64()
            }
            _ => slot.sensor.mean(),
        };
        let eta_dirty_bps = eta_mean_pps * survival * wire_per_page;
        // The live-phase drain plus the structural epilogue the config
        // promises: the resume pause is paid by every migration and is
        // invisible to the byte-rate model. Cohort calibration in the
        // tracker covers what remains (readiness wait, final-set copy).
        let eta_secs = eta::project_eta_cycle_secs(
            remaining_bytes,
            share.bytes_per_sec(),
            eta_dirty_bps,
            est,
            at_ns,
            iters_left,
        ) + slot.tenant.migration.resume_time.as_secs_f64();
        let predicted = mission.eta.record(slot.mission_vm, at_ns, eta_secs);

        let mut detail = vec![
            ("granted_bps", format!("{:.0}", share.bytes_per_sec())),
            ("wire_bytes", active.session.wire_bytes().to_string()),
            ("remaining_bytes", format!("{remaining_bytes:.0}")),
            ("dirty_bps", format!("{dirty_bps:.0}")),
            ("eta_dirty_bps", format!("{eta_dirty_bps:.0}")),
            ("eta_secs", format!("{eta_secs:.3}")),
            ("survival", format!("{survival:.3}")),
            ("iterations", iters.len().to_string()),
        ];
        if let Some(p) = predicted {
            detail.push(("predicted_end_ns", p.to_string()));
        }
        let wake = mission.causal.emit(
            at_ns,
            CausalKind::Wakeup,
            slot.last_causal,
            mission.eta.vm_name(slot.mission_vm).to_string(),
            detail,
        );
        slot.last_causal = Some(wake);

        let before = mission.watchdog.findings().len();
        mission.watchdog.observe_vm(
            slot.mission_vm,
            at_ns,
            wake,
            active.session.wire_bytes(),
            dirty_bps,
            share.bytes_per_sec(),
            iters.len(),
            iters_left,
            max_iters,
        );
        mission.emit_findings_since(before);

        if share != active.applied {
            mission.causal.emit(
                at_ns,
                CausalKind::Regrant,
                Some(wake),
                mission.eta.vm_name(slot.mission_vm).to_string(),
                vec![
                    ("old_bps", format!("{:.0}", active.applied.bytes_per_sec())),
                    ("new_bps", format!("{:.0}", share.bytes_per_sec())),
                ],
            );
            active.session.set_bandwidth(share);
            active.applied = share;
        }

        // Sample every pipe over the window since the previous wakeup and
        // run the saturation rule over the fresh samples. Wakeup times are
        // monotone (the queue pops minima), so windows never overlap.
        match mission.last_sample_at {
            None => mission.last_sample_at = Some(at),
            Some(prev) if at > prev => {
                topo.sample_pipes(at, at.saturating_since(prev), &mut mission.pipes);
                mission.last_sample_at = Some(at);
                let before = mission.watchdog.findings().len();
                mission.watchdog.observe_pipes(at_ns, wake, &mission.pipes);
                mission.emit_findings_since(before);
            }
            Some(_) => {}
        }

        match active.session.step(&mut slot.vm, &mut slot.clock)? {
            SessionStep::Complete(report) => {
                let ended = slot.clock.now();
                topo.close_flow(active.flow);
                slot.active = None;
                fleet_now = fleet_now.max(ended);
                last_end = last_end.max(ended);

                mission.eta.complete(slot.mission_vm, ended.as_nanos());
                let done = mission.causal.emit(
                    ended.as_nanos(),
                    CausalKind::Complete,
                    slot.last_causal,
                    mission.eta.vm_name(slot.mission_vm).to_string(),
                    vec![
                        ("bytes", report.total_bytes.to_string()),
                        (
                            "downtime_ns",
                            report.downtime.workload_downtime().as_nanos().to_string(),
                        ),
                    ],
                );
                slot.last_causal = Some(done);

                let admitted = slot.admitted_at.expect("completed slot was admitted");
                host.rec.record_span(
                    admitted,
                    Subsystem::Fleet,
                    "migration",
                    ended.saturating_since(admitted),
                    vec![
                        ("slot", u64::from(vmid.slot).into()),
                        ("bytes", report.total_bytes.into()),
                    ],
                );
                host.rec.hist_dur(
                    Subsystem::Fleet,
                    "migration_ns",
                    ended.saturating_since(admitted),
                );
                host.rec.hist_dur(
                    Subsystem::Fleet,
                    "downtime_ns",
                    report.downtime.workload_downtime(),
                );
                host.rec
                    .counter_add(Subsystem::Fleet, "migrations_completed", 1);
                host.rec
                    .counter_add(Subsystem::Fleet, "bytes_total", report.total_bytes);

                // Fold this tenant now, not at drain end: its tail runs on
                // its own clock, its row streams to the sink, its
                // histograms merge into bounded state, and the heavy
                // report can drop.
                slot.vm
                    .run_for(&mut slot.clock, host.spec.tail, host.spec.tick);
                let tail_end = slot.clock.now();
                slot.vm.finish_analyzer(tail_end);
                let meta = DigestMeta {
                    name: slot.tenant.name.clone(),
                    workload: slot.tenant.vm.workload.name.to_string(),
                    assisted: slot.tenant.vm.assisted,
                    seed: slot.tenant.vm.seed,
                };
                let entry = FleetVmEntry {
                    digest: RunDigest::from_report(meta, &report),
                    admitted_at_ns: admitted.saturating_since(host.drain_start).as_nanos(),
                    ended_at_ns: ended.saturating_since(host.drain_start).as_nanos(),
                    detected_period_ns: slot.detected_period_ns,
                    detected_confidence: slot.detected_confidence,
                    detect_confident: slot.detect_confident,
                    declared_period_ns: slot.declared_period_ns,
                    window_hit: slot.window_hit,
                    sla: slot.tenant.sla.cost(&report),
                };
                sla_total.add(&entry.sla);
                host.merger.add(&report.telemetry);
                if let Some(sink) = sink.as_deref_mut() {
                    sink.row(&entry);
                }
                slot.entry = Some(entry);
                if keep_reports {
                    slot.report = Some(*report);
                }

                // A completion is the only event that can unblock
                // admission anywhere: it freed a concurrency slot on this
                // host and link capacity on every hop its flow crossed.
                for (h, host) in hosts.iter_mut().enumerate() {
                    admit_host(
                        plan,
                        policy,
                        h,
                        host,
                        &mut topo,
                        &mut dests,
                        fleet_now,
                        &mut placements,
                        &mut queue,
                        &mut mission,
                    )?;
                }
            }
            _ => queue.push(slot.clock.now(), vmid),
        }
    }
    for host in &hosts {
        debug_assert!(
            host.pending.is_empty(),
            "idle scheduler with pending tenants on {}",
            host.spec.name
        );
    }

    let mut digests = Vec::with_capacity(hosts.len());
    let mut reports = Vec::with_capacity(hosts.len());
    for (host, spec) in hosts.iter_mut().zip(&plan.sources) {
        host.merger.add(&host.rec.snapshot());
        let histograms = std::mem::replace(&mut host.merger, HistMerger::new()).finish();
        let vms: Vec<FleetVmEntry> = host
            .slots
            .iter_mut()
            .map(|s| s.entry.take().expect("every tenant migrated"))
            .collect();
        digests.push(FleetDigest::new(
            FleetMeta {
                name: spec.name.clone(),
                policy: policy.name().to_string(),
                seed: spec.seed,
                uplink_bytes_per_sec: spec.uplink.bytes_per_sec(),
                max_concurrent: spec.max_concurrent,
            },
            vms,
            histograms,
        ));
        reports.push(if keep_reports {
            host.slots
                .iter_mut()
                .map(|s| s.report.take().expect("every tenant migrated"))
                .collect()
        } else {
            Vec::new()
        });
    }
    Ok(EvacOutcome {
        hosts: digests,
        placements,
        eviction_ns: last_end.saturating_since(global_start).as_nanos(),
        sla_total,
        reports,
        mission: MissionControl {
            causal: mission.causal,
            pipes: mission.pipes,
            eta: mission.eta.summary(),
            findings: mission.watchdog.into_findings(),
        },
    })
}

/// Boots one host: launches and warms every guest through the sensing
/// loop, stamps the drain-begin instant, seeds the admission queue in the
/// policy's static order.
fn boot_host(spec: &HostSpec, policy: FleetPolicy) -> HostState {
    let rec = Recorder::new();
    let cadence = spec.sense_cadence;
    let slots: Vec<Slot> = spec
        .tenants
        .iter()
        .map(|tenant| {
            let mut vm = tenant.launch();
            // Arm only the phase-shift fault at boot: its countdown must
            // span warmup and queueing, where the sensor watches. The
            // engine re-installs the identical value at migration start,
            // which is a no-op (a fired shift stays fired). Other fault
            // lanes keep their migration-start semantics.
            vm.set_phase_shift(tenant.migration.faults.phase_shift);
            let mut slot = Slot {
                tenant: tenant.clone(),
                vm,
                clock: SimClock::new(),
                active: None,
                admitted_at: None,
                sensor: SampleSeries::new(cadence.as_nanos(), spec.sense_capacity),
                sensor_last_pages: 0,
                sensor_next_at: SimTime::ZERO + cadence,
                detected_period_ns: 0,
                detected_confidence: 0.0,
                detect_confident: false,
                declared_period_ns: 0,
                window_hit: None,
                entry: None,
                report: None,
                ws_bytes: 0,
                estimate: None,
                mission_vm: usize::MAX,
                last_causal: None,
            };
            slot.catch_up(SimTime::ZERO + spec.warmup, spec.tick, cadence);
            slot
        })
        .collect();

    let drain_start = slots[0].clock.now();
    rec.instant(
        drain_start,
        Subsystem::Fleet,
        "drain_begin",
        vec![
            ("tenants", (slots.len() as u64).into()),
            ("uplink_bps", spec.uplink.bytes_per_sec().into()),
            ("max_concurrent", u64::from(spec.max_concurrent).into()),
            ("min_rate_enforced", spec.enforce_min_rate.into()),
        ],
    );

    let mut pending: Vec<usize> = (0..slots.len()).collect();
    if policy == FleetPolicy::SmallestWorkingSetFirst {
        pending.sort_by_key(|&i| {
            let heap = slots[i].vm.jvm().heap();
            (heap.young_committed() + heap.old_used(), i)
        });
    }

    HostState {
        spec: spec.clone(),
        slots,
        pending,
        drain_start,
        rec,
        merger: HistMerger::new(),
    }
}

/// Ranks the pending queue for the next admission, exactly as the
/// single-host scheduler did.
///
/// The static policies consider only the queue head — head-of-line
/// blocking is the price of a fixed order. The cycle policies rank the
/// whole queue by peak ratio (deepest in its write-quiet trough first)
/// and may admit *around* an infeasible candidate: a dynamic policy is
/// not queue-bound.
///
/// CycleAware sees only what the observatory senses: the detected
/// estimate's rate ratio at this instant, when the detector clears the
/// confidence gate. Below the gate a tenant scores exactly 1.0 — the same
/// score every steady workload gets — so the ranking degrades to the
/// working-set tie-break and the policy *is* smallest-working-set-first
/// until the detector is sure.
///
/// CycleDeclared is the oracle: the declared dirty-rate hint over the
/// declared cycle average (the application-assisted route, one level up
/// from the paper's JVMTI agent). It exists so detection accuracy has a
/// ground-truth run to be measured against.
fn rank_candidates(policy: FleetPolicy, slots: &mut [Slot], pending: &[usize]) -> Vec<usize> {
    match policy {
        FleetPolicy::Fifo | FleetPolicy::SmallestWorkingSetFirst => vec![0],
        FleetPolicy::CycleAware => {
            let mut ranked: Vec<(f64, u64, usize)> = pending
                .iter()
                .enumerate()
                .map(|(pos, &i)| {
                    let slot = &slots[i];
                    let now_ns = slot.clock.now().as_nanos();
                    let score = match detect(&slot.sensor, now_ns) {
                        Some(est) if est.confidence >= CONFIDENCE_GATE => est.rate_ratio_at(now_ns),
                        _ => 1.0,
                    };
                    let heap = slot.vm.jvm().heap();
                    let ws = heap.young_committed() + heap.old_used();
                    (score, ws, pos)
                })
                .collect();
            ranked.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("rate ratios are finite")
                    .then(a.1.cmp(&b.1))
                    .then(a.2.cmp(&b.2))
            });
            ranked.into_iter().map(|(_, _, pos)| pos).collect()
        }
        FleetPolicy::CycleDeclared => {
            let mut ranked: Vec<(f64, u64, usize)> = pending
                .iter()
                .enumerate()
                .map(|(pos, &i)| {
                    let slot = &mut slots[i];
                    let average = match &slot.tenant.phases {
                        Some(phases) => cycle_average_rate(phases),
                        None => {
                            let w = &slot.tenant.vm.workload;
                            (w.alloc_rate + w.old_write_rate).max(1.0)
                        }
                    };
                    let heap = slot.vm.jvm().heap();
                    let ws = heap.young_committed() + heap.old_used();
                    (slot.vm.dirty_rate_hint() / average, ws, pos)
                })
                .collect();
            // Ties on the peak ratio — every steady tenant sits at
            // exactly 1.0 — break smallest-working-set-first, then by
            // queue position.
            ranked.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("peak ratios are finite")
                    .then(a.1.cmp(&b.1))
                    .then(a.2.cmp(&b.2))
            });
            ranked.into_iter().map(|(_, _, pos)| pos).collect()
        }
    }
}

/// Admits tenants on host `h` until the concurrency cap, path
/// feasibility, or placement capacity stops us; every admission schedules
/// the new session on the event queue.
#[allow(clippy::too_many_arguments)]
fn admit_host(
    plan: &EvacuationPlan,
    policy: FleetPolicy,
    h: usize,
    host: &mut HostState,
    topo: &mut Topology,
    dests: &mut [DestState],
    fleet_now: SimTime,
    placements: &mut Vec<VmPlacement>,
    queue: &mut EventQueue,
    mission: &mut Mission,
) -> Result<(), MigrateError> {
    let spec = &host.spec;
    while !host.pending.is_empty() && topo.host_active(h) < spec.max_concurrent as usize {
        // Pending guests are live: bring them up to fleet time so the
        // sensors (and the eventual migration) see their true current
        // state.
        for &i in host.pending.iter() {
            host.slots[i].catch_up(fleet_now, spec.tick, spec.sense_cadence);
        }

        let order = rank_candidates(policy, &mut host.slots, &host.pending);

        // A candidate is admissible when its whole path is feasible (or
        // idle — a drain must never deadlock: with nothing in flight the
        // candidate gets the best path it will ever see) *and*, when the
        // plan has destinations, placement finds it a home. Placement
        // folds the per-destination path checks into its own feasibility
        // filter.
        let mut chosen: Option<(usize, Option<usize>)> = None;
        for pos in order {
            let slot = &host.slots[host.pending[pos]];
            let tenant = &slot.tenant;
            if dests.is_empty() {
                let ok = !spec.enforce_min_rate
                    || topo.can_admit(h, None, tenant.weight, tenant.min_rate)
                    || topo.path_idle(h, None);
                if ok {
                    chosen = Some((pos, None));
                    break;
                }
            } else {
                let heap = slot.vm.jvm().heap();
                let ws = heap.young_committed() + heap.old_used();
                if let Some(d) = place::choose(
                    plan.placement,
                    topo,
                    dests,
                    h,
                    tenant,
                    ws,
                    spec.enforce_min_rate,
                    placements.len() as u64,
                ) {
                    chosen = Some((pos, Some(d)));
                    break;
                }
            }
        }
        let Some((pos, dst)) = chosen else {
            // Every candidate the policy may pick is infeasible; capacity
            // frees up when an active migration completes, and admission
            // re-runs then.
            break;
        };
        let idx = host.pending.remove(pos);

        let slot = &mut host.slots[idx];
        // Freeze the observatory's view of this tenant at its admission
        // instant: the estimate the digest scores, and — when a declared
        // cycle exists as ground truth — whether a gate-clearing estimate
        // landed the admission below the declared cycle-average dirty
        // rate (a window hit). Every policy records this, so detected
        // accuracy is comparable across policies.
        let now_ns = slot.clock.now().as_nanos();
        let estimate = detect(&slot.sensor, now_ns);
        slot.detected_period_ns = estimate.as_ref().map_or(0, |e| e.period_ns);
        slot.detected_confidence = estimate.as_ref().map_or(0.0, |e| e.confidence);
        slot.detect_confident = estimate
            .as_ref()
            .is_some_and(|e| e.confidence >= CONFIDENCE_GATE);
        slot.declared_period_ns = slot
            .tenant
            .phases
            .as_ref()
            .map_or(0, |ph| ph.iter().map(|p| p.duration.as_nanos()).sum());
        let confident = slot.detect_confident;
        slot.window_hit = match &slot.tenant.phases {
            Some(phases) => {
                let declared_now = slot.vm.dirty_rate_hint();
                Some(confident && declared_now <= cycle_average_rate(phases))
            }
            None => None,
        };
        slot.estimate = estimate;

        // Mission control: working set for the first ETA projection, the
        // causal admit record rooted on the host's drain event, and — when
        // a destination was chosen — the placement rationale, scored
        // *before* the flow opens so it reflects the decision instant.
        let heap = slot.vm.jvm().heap();
        slot.ws_bytes = heap.young_committed() + heap.old_used();
        let vm_label = format!("{}/{}", spec.name, slot.tenant.name);
        slot.mission_vm = mission.eta.admit(&vm_label, slot.tenant.vm.workload.name);
        mission.watchdog.admit(&vm_label);
        let admit_id = mission.causal.emit(
            fleet_now.as_nanos(),
            CausalKind::Admit,
            Some(mission.host_roots[h]),
            vm_label.clone(),
            vec![
                ("ws_bytes", slot.ws_bytes.to_string()),
                (
                    "min_rate_bps",
                    format!("{:.0}", slot.tenant.min_rate.bytes_per_sec()),
                ),
                (
                    "detect_confidence",
                    format!("{:.3}", slot.detected_confidence),
                ),
            ],
        );
        slot.last_causal = Some(admit_id);
        let rationale = dst.map(|d| {
            place::rationale(
                topo,
                dests,
                h,
                &slot.tenant,
                slot.ws_bytes,
                spec.enforce_min_rate,
                d,
            )
        });

        let flow = topo.open_flow(h, dst, slot.tenant.weight, slot.tenant.min_rate);
        if let Some(d) = dst {
            dests[d].occupy();
        }
        if let (Some(d), Some(r)) = (dst, rationale.as_ref()) {
            let mut detail = vec![
                ("dest", dests[d].spec.name.clone()),
                ("policy", plan.placement.name().to_string()),
                ("score", format!("{:.3}", r.chosen_score)),
                ("candidates", r.candidates.to_string()),
            ];
            if let (Some(ru), Some(rs)) = (r.runner_up, r.runner_up_score) {
                detail.push(("runner_up", dests[ru].spec.name.clone()));
                detail.push(("runner_up_score", format!("{rs:.3}")));
            }
            let place_id = mission.causal.emit(
                fleet_now.as_nanos(),
                CausalKind::Placement,
                Some(admit_id),
                vm_label,
                detail,
            );
            slot.last_causal = Some(place_id);
        }
        placements.push(VmPlacement {
            source: h,
            slot: idx,
            vm: slot.tenant.name.clone(),
            dest: dst,
            dest_name: dst.map(|d| dests[d].spec.name.clone()),
            chosen_score: rationale.as_ref().map(|r| r.chosen_score),
            runner_up: rationale
                .as_ref()
                .and_then(|r| r.runner_up.map(|ru| dests[ru].spec.name.clone())),
            runner_up_score: rationale.as_ref().and_then(|r| r.runner_up_score),
        });
        let mut migration = slot.tenant.migration.clone();
        if spec.scan_workers > 1 {
            // Host-wide scan pool: every admitted session shards its scan
            // across the host's workers. Bit-identical to inline scanning,
            // so pooled and serial drains produce the same digest bytes
            // (locked by tests/parallel_determinism.rs).
            migration.scan_workers = spec.scan_workers;
        }
        let engine = PrecopyEngine::new(migration);
        let session = engine.begin(&mut slot.vm, &mut slot.clock, Recorder::new())?;
        let applied = slot.tenant.migration.bandwidth;
        slot.active = Some(Active {
            session,
            flow,
            applied,
        });
        slot.admitted_at = Some(fleet_now);
        host.rec.instant(
            fleet_now,
            Subsystem::Fleet,
            "admit",
            vec![
                ("slot", (idx as u64).into()),
                ("active", (topo.host_active(h) as u64).into()),
            ],
        );
        // First-class estimate telemetry: an instant per admission and a
        // confidence gauge. Gauges and instants are excluded from the
        // merged fleet histograms, so these stay digest-safe — as is the
        // placement instant, emitted only when a destination pool exists.
        host.rec.instant(
            fleet_now,
            Subsystem::Fleet,
            "workload_estimate",
            vec![
                ("slot", (idx as u64).into()),
                ("period_ns", slot.detected_period_ns.into()),
                ("confidence", slot.detected_confidence.into()),
                ("confident", slot.detect_confident.into()),
                ("declared_period_ns", slot.declared_period_ns.into()),
            ],
        );
        host.rec.gauge(
            fleet_now,
            Subsystem::Fleet,
            "detect_confidence",
            slot.detected_confidence,
        );
        if let Some(d) = dst {
            host.rec.instant(
                fleet_now,
                Subsystem::Fleet,
                "placement",
                vec![("slot", (idx as u64).into()), ("dest", (d as u64).into())],
            );
        }
        host.rec.hist_dur(
            Subsystem::Fleet,
            "queue_wait_ns",
            fleet_now.saturating_since(SimTime::ZERO + spec.warmup),
        );
        // Schedule the new session at its post-begin clock: from here on
        // it owns exactly one queue entry until it completes.
        queue.push(
            slot.clock.now(),
            VmId {
                host: h as u32,
                slot: idx as u32,
            },
        );
    }
    Ok(())
}
