//! The fleet scheduler: a deterministic co-simulation of one host drain.
//!
//! N guests run as independent simulations, each on its own [`SimClock`];
//! their migrations share one [`SharedUplink`]. The scheduler interleaves
//! them *conservatively*: it always steps the in-flight migration with the
//! smallest local clock (ties broken by roster slot), so no session ever
//! consumes a bandwidth share that a lagging session's completion could
//! retroactively have changed by more than one iteration. Re-rating is
//! iteration-granular — each session's link is re-set to its current fair
//! share immediately before its next iteration — which is exactly the
//! granularity [`MigrationSession`] yields at.
//!
//! Determinism: every scheduling decision is a pure function of the roster
//! (order, weights, min-rates), the policy, and guest-simulation state
//! that is itself seed-deterministic. Same seed + same policy ⇒ the same
//! admission sequence, the same shares, the same per-VM reports, and a
//! byte-identical [`FleetDigest`].
//!
//! The one-VM degenerate case is load-bearing: a sole subscriber's share
//! is its engine's own configured bandwidth (capacity, exactly), the
//! scheduler never re-rates it, and the step loop reduces to
//! [`PrecopyEngine::migrate_recorded`]'s — so a 1-VM FIFO drain reproduces
//! the single-VM `precopy_equivalence` goldens bit for bit.
//!
//! [`PrecopyEngine::migrate_recorded`]: migrate::precopy::PrecopyEngine::migrate_recorded

use javmm::host::{HostSpec, VmTenant};
use javmm::vm::JavaVm;
use migrate::digest::{
    merge_histograms, DigestMeta, FleetDigest, FleetMeta, FleetVmEntry, RunDigest,
};
use migrate::error::MigrateError;
use migrate::precopy::{MigrationSession, PrecopyEngine, SessionStep};
use migrate::report::MigrationReport;
use netsim::{SharedUplink, SubscriberId};
use simkit::telemetry::{Recorder, Subsystem};
use simkit::units::Bandwidth;
use simkit::{SimClock, SimDuration, SimTime};

use crate::policy::{cycle_average_rate, FleetPolicy};

/// Everything one drain produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The byte-deterministic fleet digest.
    pub digest: FleetDigest,
    /// Per-VM migration reports, in roster order.
    pub reports: Vec<MigrationReport>,
}

/// One guest's slot in the drain.
struct Slot {
    tenant: VmTenant,
    vm: JavaVm,
    clock: SimClock,
    active: Option<Active>,
    admitted_at: Option<SimTime>,
    ended_at: Option<SimTime>,
    report: Option<MigrationReport>,
}

struct Active {
    session: MigrationSession,
    sub: SubscriberId,
    /// Rate last applied to the session's link; re-rating is skipped when
    /// the share is unchanged so a sole subscriber's link state is never
    /// touched (golden equivalence).
    applied: Bandwidth,
}

impl Slot {
    /// Runs the guest up to `target` fleet time (workloads keep executing
    /// — and dirtying — while they wait for admission).
    fn catch_up(&mut self, target: SimTime, tick: SimDuration) {
        let lag = target.saturating_since(self.clock.now());
        if !lag.is_zero() {
            self.vm.run_for(&mut self.clock, lag, tick);
        }
    }
}

/// Runs one host drain under `policy`.
///
/// # Errors
///
/// Propagates the first [`MigrateError`] any tenant's engine raises
/// (invalid config, missing LKM, exhausted coordination under the `Fail`
/// fallback). Degraded-but-completed migrations are not errors; they show
/// up in the digest's `degraded` count.
///
/// # Panics
///
/// Panics if the host has no tenants.
pub fn run_fleet(host: &HostSpec, policy: FleetPolicy) -> Result<FleetOutcome, MigrateError> {
    assert!(!host.tenants.is_empty(), "cannot drain an empty host");
    let fleet_rec = Recorder::new();

    // Boot and warm every guest on its own clock.
    let mut slots: Vec<Slot> = host
        .tenants
        .iter()
        .map(|tenant| {
            let mut vm = tenant.launch();
            let mut clock = SimClock::new();
            vm.run_for(&mut clock, host.warmup, host.tick);
            Slot {
                tenant: tenant.clone(),
                vm,
                clock,
                active: None,
                admitted_at: None,
                ended_at: None,
                report: None,
            }
        })
        .collect();

    let drain_start = slots[0].clock.now();
    fleet_rec.instant(
        drain_start,
        Subsystem::Fleet,
        "drain_begin",
        vec![
            ("tenants", (slots.len() as u64).into()),
            ("uplink_bps", host.uplink.bytes_per_sec().into()),
            ("max_concurrent", u64::from(host.max_concurrent).into()),
            ("min_rate_enforced", host.enforce_min_rate.into()),
        ],
    );

    // Admission queue in the policy's static order. CycleAware re-picks
    // dynamically from this queue at every admission opportunity.
    let mut pending: Vec<usize> = (0..slots.len()).collect();
    if policy == FleetPolicy::SmallestWorkingSetFirst {
        pending.sort_by_key(|&i| {
            let heap = slots[i].vm.jvm().heap();
            (heap.young_committed() + heap.old_used(), i)
        });
    }

    let mut uplink = SharedUplink::new(host.uplink);
    let mut fleet_now = drain_start;

    loop {
        admit_all(
            host,
            policy,
            &mut slots,
            &mut pending,
            &mut uplink,
            fleet_now,
            &fleet_rec,
        )?;

        // Step the laggard: the active session with the smallest local
        // clock (ties broken by roster slot) — conservative co-simulation.
        let Some(idx) = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active.is_some())
            .min_by_key(|(i, s)| (s.clock.now(), *i))
            .map(|(i, _)| i)
        else {
            debug_assert!(pending.is_empty(), "idle scheduler with pending tenants");
            break;
        };

        let slot = &mut slots[idx];
        let active = slot.active.as_mut().expect("laggard slot is active");
        let share = uplink.share(active.sub);
        if share != active.applied {
            active.session.set_bandwidth(share);
            active.applied = share;
        }
        if let SessionStep::Complete(report) = active.session.step(&mut slot.vm, &mut slot.clock)? {
            let ended = slot.clock.now();
            uplink.unsubscribe(active.sub);
            slot.active = None;
            slot.ended_at = Some(ended);
            fleet_now = fleet_now.max(ended);

            let admitted = slot.admitted_at.expect("completed slot was admitted");
            fleet_rec.record_span(
                admitted,
                Subsystem::Fleet,
                "migration",
                ended.saturating_since(admitted),
                vec![
                    ("slot", (idx as u64).into()),
                    ("bytes", report.total_bytes.into()),
                ],
            );
            fleet_rec.hist_dur(
                Subsystem::Fleet,
                "migration_ns",
                ended.saturating_since(admitted),
            );
            fleet_rec.hist_dur(
                Subsystem::Fleet,
                "downtime_ns",
                report.downtime.workload_downtime(),
            );
            fleet_rec.counter_add(Subsystem::Fleet, "migrations_completed", 1);
            fleet_rec.counter_add(Subsystem::Fleet, "bytes_total", report.total_bytes);
            slot.report = Some(*report);
        }
    }

    // Every tenant keeps serving from its destination for the tail.
    for slot in &mut slots {
        slot.vm.run_for(&mut slot.clock, host.tail, host.tick);
        let now = slot.clock.now();
        slot.vm.finish_analyzer(now);
    }

    let reports: Vec<MigrationReport> = slots
        .iter_mut()
        .map(|s| s.report.take().expect("every tenant migrated"))
        .collect();

    let fleet_snapshot = fleet_rec.snapshot();
    let histograms = merge_histograms(
        reports
            .iter()
            .map(|r| &r.telemetry)
            .chain(std::iter::once(&fleet_snapshot)),
    );
    let vms = slots
        .iter()
        .zip(&reports)
        .map(|(slot, report)| {
            let meta = DigestMeta {
                name: slot.tenant.name.clone(),
                workload: slot.tenant.vm.workload.name.to_string(),
                assisted: slot.tenant.vm.assisted,
                seed: slot.tenant.vm.seed,
            };
            FleetVmEntry {
                digest: RunDigest::from_report(meta, report),
                admitted_at_ns: slot
                    .admitted_at
                    .expect("every tenant was admitted")
                    .saturating_since(drain_start)
                    .as_nanos(),
                ended_at_ns: slot
                    .ended_at
                    .expect("every tenant finished")
                    .saturating_since(drain_start)
                    .as_nanos(),
                sla: slot.tenant.sla.cost(report),
            }
        })
        .collect();
    let digest = FleetDigest::new(
        FleetMeta {
            name: host.name.clone(),
            policy: policy.name().to_string(),
            seed: host.seed,
            uplink_bytes_per_sec: host.uplink.bytes_per_sec(),
            max_concurrent: host.max_concurrent,
        },
        vms,
        histograms,
    );
    Ok(FleetOutcome { digest, reports })
}

/// Admits tenants until the concurrency cap, the min-rate feasibility
/// check, or head-of-line blocking stops us.
#[allow(clippy::too_many_arguments)]
fn admit_all(
    host: &HostSpec,
    policy: FleetPolicy,
    slots: &mut [Slot],
    pending: &mut Vec<usize>,
    uplink: &mut SharedUplink,
    fleet_now: SimTime,
    fleet_rec: &Recorder,
) -> Result<(), MigrateError> {
    while !pending.is_empty() && uplink.active() < host.max_concurrent as usize {
        // Pending guests are live: bring them up to fleet time so probes
        // (and the eventual migration) see their true current state.
        for &i in pending.iter() {
            slots[i].catch_up(fleet_now, host.tick);
        }

        // Candidate order. The static policies consider only the queue
        // head — head-of-line blocking is the price of a fixed order.
        // CycleAware ranks the whole queue by peak ratio (deepest in its
        // write-quiet trough first; steady workloads sit at exactly 1.0
        // and tie back to queue order) and may admit *around* an
        // infeasible candidate: a dynamic policy is not queue-bound. The
        // signal is application-assisted, one level up from the paper's
        // JVMTI agent — the guest's mutator reports its current dirty
        // rate, and the tenant's declared cycle (or its steady spec)
        // gives the average to compare against.
        let order: Vec<usize> = match policy {
            FleetPolicy::Fifo | FleetPolicy::SmallestWorkingSetFirst => vec![0],
            FleetPolicy::CycleAware => {
                let mut ranked: Vec<(f64, u64, usize)> = pending
                    .iter()
                    .enumerate()
                    .map(|(pos, &i)| {
                        let slot = &mut slots[i];
                        let average = match &slot.tenant.phases {
                            Some(phases) => cycle_average_rate(phases),
                            None => {
                                let w = &slot.tenant.vm.workload;
                                (w.alloc_rate + w.old_write_rate).max(1.0)
                            }
                        };
                        let heap = slot.vm.jvm().heap();
                        let ws = heap.young_committed() + heap.old_used();
                        (slot.vm.dirty_rate_hint() / average, ws, pos)
                    })
                    .collect();
                // Ties on the peak ratio — every steady tenant sits at
                // exactly 1.0 — break smallest-working-set-first, then by
                // queue position.
                ranked.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("peak ratios are finite")
                        .then(a.1.cmp(&b.1))
                        .then(a.2.cmp(&b.2))
                });
                ranked.into_iter().map(|(_, _, pos)| pos).collect()
            }
        };
        let feasible_pos = order.into_iter().find(|&pos| {
            let tenant = &slots[pending[pos]].tenant;
            !host.enforce_min_rate
                || uplink.can_admit(tenant.weight, tenant.min_rate)
                // A drain must never deadlock: with nothing in flight the
                // candidate gets the whole uplink, the best it will ever
                // see.
                || uplink.active() == 0
        });
        let Some(pos) = feasible_pos else {
            // Every candidate the policy may pick is infeasible; capacity
            // frees up when an active migration completes, and admission
            // re-runs then.
            break;
        };
        let idx = pending.remove(pos);

        let slot = &mut slots[idx];
        let sub = uplink.subscribe(slot.tenant.weight, slot.tenant.min_rate);
        let engine = PrecopyEngine::new(slot.tenant.migration.clone());
        let session = engine.begin(&mut slot.vm, &mut slot.clock, Recorder::new())?;
        let applied = slot.tenant.migration.bandwidth;
        slot.active = Some(Active {
            session,
            sub,
            applied,
        });
        slot.admitted_at = Some(fleet_now);
        fleet_rec.instant(
            fleet_now,
            Subsystem::Fleet,
            "admit",
            vec![
                ("slot", (idx as u64).into()),
                ("active", (uplink.active() as u64).into()),
            ],
        );
        fleet_rec.hist_dur(
            Subsystem::Fleet,
            "queue_wait_ns",
            fleet_now.saturating_since(SimTime::ZERO + host.warmup),
        );
    }
    Ok(())
}
