//! The single-host drain API: a thin adapter over the event-driven
//! evacuation core ([`crate::evac`]).
//!
//! Historically this module owned the whole drain loop — N guests on
//! their own [`SimClock`](simkit::SimClock)s, migrations sharing one
//! uplink, a laggard-first scan picking the next session to step. That
//! machinery now lives in [`crate::evac`], generalised to many hosts, a
//! contended [`Topology`](netsim::topology::Topology), and destination
//! placement; [`run_fleet`] simply wraps the host in the *degenerate*
//! evacuation plan — one source, no destinations, no core switch — where
//! the topology collapses to the host's NIC and the event-driven core is
//! provably step-for-step identical to the old scan (see the module docs
//! of [`crate::evac`] for the argument, and `tests/evacuation.rs` for the
//! byte-identity lock against the committed drain digests).
//!
//! Everything documented here still holds of a drain run through this
//! adapter:
//!
//! * **Conservative interleaving** — the in-flight session with the
//!   smallest local clock steps next, ties broken by roster slot.
//! * **The workload observatory** — pending tenants are sensed on
//!   [`HostSpec::sense_cadence`] and the cycle policies schedule on what
//!   was *detected*, falling back to smallest-working-set-first below the
//!   confidence gate.
//! * **Determinism** — same seed + same policy ⇒ a byte-identical
//!   [`FleetDigest`].
//! * **The one-VM degenerate case** — a sole subscriber's share is its
//!   engine's own configured bandwidth exactly, so a 1-VM FIFO drain
//!   reproduces the single-VM `precopy_equivalence` goldens bit for bit.

use javmm::host::HostSpec;
use migrate::digest::{FleetDigest, FleetVmEntry};
use migrate::error::MigrateError;
use migrate::report::MigrationReport;

use crate::evac::{drain_evacuation, EvacuationPlan};
use crate::policy::FleetPolicy;

/// Everything one drain produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The byte-deterministic fleet digest.
    pub digest: FleetDigest,
    /// Per-VM migration reports, in roster order.
    pub reports: Vec<MigrationReport>,
}

/// Receives per-VM digest rows as migrations complete.
///
/// A streamed drain ([`run_fleet_streamed`]) folds each tenant into its
/// [`FleetVmEntry`] the moment its migration (plus tail) finishes, hands
/// the row to the sink, and drops the heavy report — so a long drain's
/// memory is bounded by the in-flight set, not the roster. Rows arrive in
/// *completion* order; the final digest still lists them in roster order.
pub trait FleetRowSink {
    /// Called once per tenant, in completion order.
    fn row(&mut self, entry: &FleetVmEntry);
}

/// Runs one host drain under `policy`.
///
/// Equivalent to evacuating the host under
/// [`EvacuationPlan::single_host`]; kept as the stable single-host entry
/// point, byte-identical to the pre-evacuation scheduler.
///
/// # Errors
///
/// An invalid host spec ([`HostSpec::validate`]) surfaces as
/// [`MigrateError::Config`]; otherwise propagates the first
/// [`MigrateError`] any tenant's engine raises (missing LKM, exhausted
/// coordination under the `Fail` fallback). Degraded-but-completed
/// migrations are not errors; they show up in the digest's `degraded`
/// count.
pub fn run_fleet(host: &HostSpec, policy: FleetPolicy) -> Result<FleetOutcome, MigrateError> {
    let plan = EvacuationPlan::single_host(host.clone());
    let mut out = drain_evacuation(&plan, policy, None, true)?;
    Ok(FleetOutcome {
        digest: out.hosts.remove(0),
        reports: out.reports.remove(0),
    })
}

/// Like [`run_fleet`], but streams each per-VM row to `sink` as its
/// migration completes and drops the heavy reports instead of holding
/// every one in memory for the whole drain. Produces a digest
/// byte-identical to [`run_fleet`]'s.
///
/// # Errors
///
/// Same as [`run_fleet`].
pub fn run_fleet_streamed(
    host: &HostSpec,
    policy: FleetPolicy,
    sink: &mut dyn FleetRowSink,
) -> Result<FleetDigest, MigrateError> {
    let plan = EvacuationPlan::single_host(host.clone());
    let mut out = drain_evacuation(&plan, policy, Some(sink), false)?;
    Ok(out.hosts.remove(0))
}
