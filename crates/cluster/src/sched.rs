//! The fleet scheduler: a deterministic co-simulation of one host drain.
//!
//! N guests run as independent simulations, each on its own [`SimClock`];
//! their migrations share one [`SharedUplink`]. The scheduler interleaves
//! them *conservatively*: it always steps the in-flight migration with the
//! smallest local clock (ties broken by roster slot), so no session ever
//! consumes a bandwidth share that a lagging session's completion could
//! retroactively have changed by more than one iteration. Re-rating is
//! iteration-granular — each session's link is re-set to its current fair
//! share immediately before its next iteration — which is exactly the
//! granularity [`MigrationSession`] yields at.
//!
//! # The workload observatory
//!
//! While a tenant waits for admission the scheduler *senses* it: every
//! [`HostSpec::sense_cadence`] of guest time it reads the JVM's cumulative
//! page-write counter and pushes the delta, as pages/second, into a
//! bounded per-tenant [`SampleSeries`]. The cycle detector
//! ([`crate::detect`]) turns that ring into a [`WorkloadEstimate`] on
//! demand — no declared hints involved — and the cycle-aware policy
//! schedules on what was *detected*, falling back to
//! smallest-working-set-first whenever confidence is below
//! [`CONFIDENCE_GATE`]. Each admission records the estimate (period,
//! confidence, declared ground truth, window hit) so the fleet digest can
//! score detection accuracy after the fact.
//!
//! Determinism: every scheduling decision is a pure function of the roster
//! (order, weights, min-rates), the policy, and guest-simulation state
//! that is itself seed-deterministic. Sensing is a pure read of guest
//! counters on a fixed cadence, so it never perturbs a run. Same seed +
//! same policy ⇒ the same admission sequence, the same estimates, the same
//! per-VM reports, and a byte-identical [`FleetDigest`].
//!
//! The one-VM degenerate case is load-bearing: a sole subscriber's share
//! is its engine's own configured bandwidth (capacity, exactly), the
//! scheduler never re-rates it, and the step loop reduces to
//! [`PrecopyEngine::migrate_recorded`]'s — so a 1-VM FIFO drain reproduces
//! the single-VM `precopy_equivalence` goldens bit for bit (the sensing
//! cadence divides the warmup, so the chunked warmup issues the identical
//! tick sequence).
//!
//! [`PrecopyEngine::migrate_recorded`]: migrate::precopy::PrecopyEngine::migrate_recorded
//! [`SampleSeries`]: simkit::telemetry::SampleSeries
//! [`CONFIDENCE_GATE`]: crate::detect::CONFIDENCE_GATE

use javmm::host::{HostSpec, VmTenant};
use javmm::vm::JavaVm;
use migrate::digest::{DigestMeta, FleetDigest, FleetMeta, FleetVmEntry, HistMerger, RunDigest};
use migrate::error::MigrateError;
use migrate::precopy::{MigrationSession, PrecopyEngine, SessionStep};
use migrate::report::MigrationReport;
use netsim::{SharedUplink, SubscriberId};
use simkit::telemetry::{Recorder, SampleSeries, Subsystem};
use simkit::units::Bandwidth;
use simkit::{SimClock, SimDuration, SimTime};

use crate::detect::{detect, CONFIDENCE_GATE};
use crate::policy::{cycle_average_rate, FleetPolicy};

/// Everything one drain produces.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The byte-deterministic fleet digest.
    pub digest: FleetDigest,
    /// Per-VM migration reports, in roster order.
    pub reports: Vec<MigrationReport>,
}

/// Receives per-VM digest rows as migrations complete.
///
/// A streamed drain ([`run_fleet_streamed`]) folds each tenant into its
/// [`FleetVmEntry`] the moment its migration (plus tail) finishes, hands
/// the row to the sink, and drops the heavy report — so a long drain's
/// memory is bounded by the in-flight set, not the roster. Rows arrive in
/// *completion* order; the final digest still lists them in roster order.
pub trait FleetRowSink {
    /// Called once per tenant, in completion order.
    fn row(&mut self, entry: &FleetVmEntry);
}

/// One guest's slot in the drain.
struct Slot {
    tenant: VmTenant,
    vm: JavaVm,
    clock: SimClock,
    active: Option<Active>,
    admitted_at: Option<SimTime>,
    ended_at: Option<SimTime>,
    /// The dirty-rate sensor: pages/second sampled on the sense cadence
    /// while the tenant waits for admission.
    sensor: SampleSeries,
    sensor_last_pages: u64,
    sensor_next_at: SimTime,
    /// Detection facts frozen at admission (digest fields).
    detected_period_ns: u64,
    detected_confidence: f64,
    detect_confident: bool,
    declared_period_ns: u64,
    window_hit: Option<bool>,
    entry: Option<FleetVmEntry>,
    report: Option<MigrationReport>,
}

struct Active {
    session: MigrationSession,
    sub: SubscriberId,
    /// Rate last applied to the session's link; re-rating is skipped when
    /// the share is unchanged so a sole subscriber's link state is never
    /// touched (golden equivalence).
    applied: Bandwidth,
}

impl Slot {
    /// Runs the guest up to `target` fleet time (workloads keep executing
    /// — and dirtying — while they wait for admission), sampling the
    /// page-write rate into the sensor at every cadence crossing.
    fn catch_up(&mut self, target: SimTime, tick: SimDuration, cadence: SimDuration) {
        while self.clock.now() < target {
            let until = self.sensor_next_at.min(target);
            let lag = until.saturating_since(self.clock.now());
            if !lag.is_zero() {
                self.vm.run_for(&mut self.clock, lag, tick);
            }
            if self.clock.now() >= self.sensor_next_at {
                let now = self.clock.now();
                let pages = self.vm.jvm().stats().pages_written;
                let rate = (pages - self.sensor_last_pages) as f64 / cadence.as_secs_f64();
                self.sensor.push(now.as_nanos(), rate);
                self.sensor_last_pages = pages;
                self.sensor_next_at = now + cadence;
            }
        }
    }
}

/// Runs one host drain under `policy`.
///
/// # Errors
///
/// Propagates the first [`MigrateError`] any tenant's engine raises
/// (invalid config, missing LKM, exhausted coordination under the `Fail`
/// fallback). Degraded-but-completed migrations are not errors; they show
/// up in the digest's `degraded` count.
///
/// # Panics
///
/// Panics if the host has no tenants, or if the sense cadence is zero or
/// not a multiple of the guest tick.
pub fn run_fleet(host: &HostSpec, policy: FleetPolicy) -> Result<FleetOutcome, MigrateError> {
    let (digest, reports) = drain(host, policy, None, true)?;
    Ok(FleetOutcome { digest, reports })
}

/// Like [`run_fleet`], but streams each per-VM row to `sink` as its
/// migration completes and drops the heavy reports instead of holding
/// every one in memory for the whole drain. Produces a digest
/// byte-identical to [`run_fleet`]'s.
///
/// # Errors
///
/// Same as [`run_fleet`].
pub fn run_fleet_streamed(
    host: &HostSpec,
    policy: FleetPolicy,
    sink: &mut dyn FleetRowSink,
) -> Result<FleetDigest, MigrateError> {
    let (digest, _) = drain(host, policy, Some(sink), false)?;
    Ok(digest)
}

fn drain(
    host: &HostSpec,
    policy: FleetPolicy,
    mut sink: Option<&mut dyn FleetRowSink>,
    keep_reports: bool,
) -> Result<(FleetDigest, Vec<MigrationReport>), MigrateError> {
    assert!(!host.tenants.is_empty(), "cannot drain an empty host");
    assert!(
        !host.sense_cadence.is_zero()
            && host
                .sense_cadence
                .as_nanos()
                .is_multiple_of(host.tick.as_nanos()),
        "sense cadence must be a nonzero multiple of the guest tick"
    );
    let fleet_rec = Recorder::new();
    let cadence = host.sense_cadence;

    // Boot and warm every guest on its own clock; warming runs through the
    // sensing loop, so each tenant's dirty-rate ring covers the warmup.
    let mut slots: Vec<Slot> = host
        .tenants
        .iter()
        .map(|tenant| {
            let mut vm = tenant.launch();
            // Arm only the phase-shift fault at boot: its countdown must
            // span warmup and queueing, where the sensor watches. The
            // engine re-installs the identical value at migration start,
            // which is a no-op (a fired shift stays fired). Other fault
            // lanes keep their migration-start semantics.
            vm.set_phase_shift(tenant.migration.faults.phase_shift);
            let mut slot = Slot {
                tenant: tenant.clone(),
                vm,
                clock: SimClock::new(),
                active: None,
                admitted_at: None,
                ended_at: None,
                sensor: SampleSeries::new(cadence.as_nanos(), host.sense_capacity),
                sensor_last_pages: 0,
                sensor_next_at: SimTime::ZERO + cadence,
                detected_period_ns: 0,
                detected_confidence: 0.0,
                detect_confident: false,
                declared_period_ns: 0,
                window_hit: None,
                entry: None,
                report: None,
            };
            slot.catch_up(SimTime::ZERO + host.warmup, host.tick, cadence);
            slot
        })
        .collect();

    let drain_start = slots[0].clock.now();
    fleet_rec.instant(
        drain_start,
        Subsystem::Fleet,
        "drain_begin",
        vec![
            ("tenants", (slots.len() as u64).into()),
            ("uplink_bps", host.uplink.bytes_per_sec().into()),
            ("max_concurrent", u64::from(host.max_concurrent).into()),
            ("min_rate_enforced", host.enforce_min_rate.into()),
        ],
    );

    // Admission queue in the policy's static order. The cycle policies
    // re-rank dynamically from this queue at every admission opportunity.
    let mut pending: Vec<usize> = (0..slots.len()).collect();
    if policy == FleetPolicy::SmallestWorkingSetFirst {
        pending.sort_by_key(|&i| {
            let heap = slots[i].vm.jvm().heap();
            (heap.young_committed() + heap.old_used(), i)
        });
    }

    let mut uplink = SharedUplink::new(host.uplink);
    let mut fleet_now = drain_start;
    let mut merger = HistMerger::new();

    loop {
        admit_all(
            host,
            policy,
            &mut slots,
            &mut pending,
            &mut uplink,
            fleet_now,
            &fleet_rec,
        )?;

        // Step the laggard: the active session with the smallest local
        // clock (ties broken by roster slot) — conservative co-simulation.
        let Some(idx) = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active.is_some())
            .min_by_key(|(i, s)| (s.clock.now(), *i))
            .map(|(i, _)| i)
        else {
            debug_assert!(pending.is_empty(), "idle scheduler with pending tenants");
            break;
        };

        let slot = &mut slots[idx];
        let active = slot.active.as_mut().expect("laggard slot is active");
        let share = uplink.share(active.sub);
        if share != active.applied {
            active.session.set_bandwidth(share);
            active.applied = share;
        }
        if let SessionStep::Complete(report) = active.session.step(&mut slot.vm, &mut slot.clock)? {
            let ended = slot.clock.now();
            uplink.unsubscribe(active.sub);
            slot.active = None;
            slot.ended_at = Some(ended);
            fleet_now = fleet_now.max(ended);

            let admitted = slot.admitted_at.expect("completed slot was admitted");
            fleet_rec.record_span(
                admitted,
                Subsystem::Fleet,
                "migration",
                ended.saturating_since(admitted),
                vec![
                    ("slot", (idx as u64).into()),
                    ("bytes", report.total_bytes.into()),
                ],
            );
            fleet_rec.hist_dur(
                Subsystem::Fleet,
                "migration_ns",
                ended.saturating_since(admitted),
            );
            fleet_rec.hist_dur(
                Subsystem::Fleet,
                "downtime_ns",
                report.downtime.workload_downtime(),
            );
            fleet_rec.counter_add(Subsystem::Fleet, "migrations_completed", 1);
            fleet_rec.counter_add(Subsystem::Fleet, "bytes_total", report.total_bytes);

            // Fold this tenant now, not at drain end: its tail runs on its
            // own clock, its row streams to the sink, its histograms merge
            // into bounded state, and the heavy report can drop.
            slot.vm.run_for(&mut slot.clock, host.tail, host.tick);
            let tail_end = slot.clock.now();
            slot.vm.finish_analyzer(tail_end);
            let meta = DigestMeta {
                name: slot.tenant.name.clone(),
                workload: slot.tenant.vm.workload.name.to_string(),
                assisted: slot.tenant.vm.assisted,
                seed: slot.tenant.vm.seed,
            };
            let entry = FleetVmEntry {
                digest: RunDigest::from_report(meta, &report),
                admitted_at_ns: admitted.saturating_since(drain_start).as_nanos(),
                ended_at_ns: ended.saturating_since(drain_start).as_nanos(),
                detected_period_ns: slot.detected_period_ns,
                detected_confidence: slot.detected_confidence,
                detect_confident: slot.detect_confident,
                declared_period_ns: slot.declared_period_ns,
                window_hit: slot.window_hit,
                sla: slot.tenant.sla.cost(&report),
            };
            merger.add(&report.telemetry);
            if let Some(sink) = sink.as_deref_mut() {
                sink.row(&entry);
            }
            slot.entry = Some(entry);
            if keep_reports {
                slot.report = Some(*report);
            }
        }
    }

    merger.add(&fleet_rec.snapshot());
    let histograms = merger.finish();
    let vms: Vec<FleetVmEntry> = slots
        .iter_mut()
        .map(|s| s.entry.take().expect("every tenant migrated"))
        .collect();
    let digest = FleetDigest::new(
        FleetMeta {
            name: host.name.clone(),
            policy: policy.name().to_string(),
            seed: host.seed,
            uplink_bytes_per_sec: host.uplink.bytes_per_sec(),
            max_concurrent: host.max_concurrent,
        },
        vms,
        histograms,
    );
    let reports: Vec<MigrationReport> = if keep_reports {
        slots
            .iter_mut()
            .map(|s| s.report.take().expect("every tenant migrated"))
            .collect()
    } else {
        Vec::new()
    };
    Ok((digest, reports))
}

/// Admits tenants until the concurrency cap, the min-rate feasibility
/// check, or head-of-line blocking stops us.
#[allow(clippy::too_many_arguments)]
fn admit_all(
    host: &HostSpec,
    policy: FleetPolicy,
    slots: &mut [Slot],
    pending: &mut Vec<usize>,
    uplink: &mut SharedUplink,
    fleet_now: SimTime,
    fleet_rec: &Recorder,
) -> Result<(), MigrateError> {
    while !pending.is_empty() && uplink.active() < host.max_concurrent as usize {
        // Pending guests are live: bring them up to fleet time so the
        // sensors (and the eventual migration) see their true current
        // state.
        for &i in pending.iter() {
            slots[i].catch_up(fleet_now, host.tick, host.sense_cadence);
        }

        // Candidate order. The static policies consider only the queue
        // head — head-of-line blocking is the price of a fixed order. The
        // cycle policies rank the whole queue by peak ratio (deepest in
        // its write-quiet trough first) and may admit *around* an
        // infeasible candidate: a dynamic policy is not queue-bound.
        //
        // CycleAware sees only what the observatory senses: the detected
        // estimate's rate ratio at this instant, when the detector clears
        // the confidence gate. Below the gate a tenant scores exactly 1.0
        // — the same score every steady workload gets — so the ranking
        // degrades to the working-set tie-break and the policy *is*
        // smallest-working-set-first until the detector is sure.
        //
        // CycleDeclared is the oracle: the declared dirty-rate hint over
        // the declared cycle average (the application-assisted route, one
        // level up from the paper's JVMTI agent). It exists so detection
        // accuracy has a ground-truth run to be measured against.
        let order: Vec<usize> = match policy {
            FleetPolicy::Fifo | FleetPolicy::SmallestWorkingSetFirst => vec![0],
            FleetPolicy::CycleAware => {
                let mut ranked: Vec<(f64, u64, usize)> = pending
                    .iter()
                    .enumerate()
                    .map(|(pos, &i)| {
                        let slot = &slots[i];
                        let now_ns = slot.clock.now().as_nanos();
                        let score = match detect(&slot.sensor, now_ns) {
                            Some(est) if est.confidence >= CONFIDENCE_GATE => {
                                est.rate_ratio_at(now_ns)
                            }
                            _ => 1.0,
                        };
                        let heap = slot.vm.jvm().heap();
                        let ws = heap.young_committed() + heap.old_used();
                        (score, ws, pos)
                    })
                    .collect();
                ranked.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("rate ratios are finite")
                        .then(a.1.cmp(&b.1))
                        .then(a.2.cmp(&b.2))
                });
                ranked.into_iter().map(|(_, _, pos)| pos).collect()
            }
            FleetPolicy::CycleDeclared => {
                let mut ranked: Vec<(f64, u64, usize)> = pending
                    .iter()
                    .enumerate()
                    .map(|(pos, &i)| {
                        let slot = &mut slots[i];
                        let average = match &slot.tenant.phases {
                            Some(phases) => cycle_average_rate(phases),
                            None => {
                                let w = &slot.tenant.vm.workload;
                                (w.alloc_rate + w.old_write_rate).max(1.0)
                            }
                        };
                        let heap = slot.vm.jvm().heap();
                        let ws = heap.young_committed() + heap.old_used();
                        (slot.vm.dirty_rate_hint() / average, ws, pos)
                    })
                    .collect();
                // Ties on the peak ratio — every steady tenant sits at
                // exactly 1.0 — break smallest-working-set-first, then by
                // queue position.
                ranked.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("peak ratios are finite")
                        .then(a.1.cmp(&b.1))
                        .then(a.2.cmp(&b.2))
                });
                ranked.into_iter().map(|(_, _, pos)| pos).collect()
            }
        };
        let feasible_pos = order.into_iter().find(|&pos| {
            let tenant = &slots[pending[pos]].tenant;
            !host.enforce_min_rate
                || uplink.can_admit(tenant.weight, tenant.min_rate)
                // A drain must never deadlock: with nothing in flight the
                // candidate gets the whole uplink, the best it will ever
                // see.
                || uplink.active() == 0
        });
        let Some(pos) = feasible_pos else {
            // Every candidate the policy may pick is infeasible; capacity
            // frees up when an active migration completes, and admission
            // re-runs then.
            break;
        };
        let idx = pending.remove(pos);

        let slot = &mut slots[idx];
        // Freeze the observatory's view of this tenant at its admission
        // instant: the estimate the digest scores, and — when a declared
        // cycle exists as ground truth — whether a gate-clearing estimate
        // landed the admission below the declared cycle-average dirty
        // rate (a window hit). Every policy records this, so detected
        // accuracy is comparable across policies.
        let now_ns = slot.clock.now().as_nanos();
        let estimate = detect(&slot.sensor, now_ns);
        slot.detected_period_ns = estimate.as_ref().map_or(0, |e| e.period_ns);
        slot.detected_confidence = estimate.as_ref().map_or(0.0, |e| e.confidence);
        slot.detect_confident = estimate
            .as_ref()
            .is_some_and(|e| e.confidence >= CONFIDENCE_GATE);
        slot.declared_period_ns = slot
            .tenant
            .phases
            .as_ref()
            .map_or(0, |ph| ph.iter().map(|p| p.duration.as_nanos()).sum());
        let confident = slot.detect_confident;
        slot.window_hit = match &slot.tenant.phases {
            Some(phases) => {
                let declared_now = slot.vm.dirty_rate_hint();
                Some(confident && declared_now <= cycle_average_rate(phases))
            }
            None => None,
        };

        let sub = uplink.subscribe(slot.tenant.weight, slot.tenant.min_rate);
        let mut migration = slot.tenant.migration.clone();
        if host.scan_workers > 1 {
            // Host-wide scan pool: every admitted session shards its scan
            // across the host's workers. Bit-identical to inline scanning,
            // so pooled and serial drains produce the same digest bytes
            // (locked by tests/parallel_determinism.rs).
            migration.scan_workers = host.scan_workers;
        }
        let engine = PrecopyEngine::new(migration);
        let session = engine.begin(&mut slot.vm, &mut slot.clock, Recorder::new())?;
        let applied = slot.tenant.migration.bandwidth;
        slot.active = Some(Active {
            session,
            sub,
            applied,
        });
        slot.admitted_at = Some(fleet_now);
        fleet_rec.instant(
            fleet_now,
            Subsystem::Fleet,
            "admit",
            vec![
                ("slot", (idx as u64).into()),
                ("active", (uplink.active() as u64).into()),
            ],
        );
        // First-class estimate telemetry: an instant per admission and a
        // confidence gauge. Gauges and instants are excluded from the
        // merged fleet histograms, so these stay digest-safe.
        fleet_rec.instant(
            fleet_now,
            Subsystem::Fleet,
            "workload_estimate",
            vec![
                ("slot", (idx as u64).into()),
                ("period_ns", slot.detected_period_ns.into()),
                ("confidence", slot.detected_confidence.into()),
                ("confident", slot.detect_confident.into()),
                ("declared_period_ns", slot.declared_period_ns.into()),
            ],
        );
        fleet_rec.gauge(
            fleet_now,
            Subsystem::Fleet,
            "detect_confidence",
            slot.detected_confidence,
        );
        fleet_rec.hist_dur(
            Subsystem::Fleet,
            "queue_wait_ns",
            fleet_now.saturating_since(SimTime::ZERO + host.warmup),
        );
    }
    Ok(())
}
