#![warn(missing_docs)]
//! `cluster` — fleet scheduling of concurrent live migrations.
//!
//! The paper migrates one VM; this crate drains a host of them. N guests
//! run as independent deterministic simulations whose migrations share
//! one uplink ([`netsim::SharedUplink`]) under weighted-fair arbitration.
//! The scheduler ([`sched::run_fleet`]) interleaves the per-VM
//! [`migrate::precopy::MigrationSession`]s conservatively (laggard
//! first), applies admission control (a concurrency cap plus a per-tenant
//! minimum-rate feasibility check, so no admitted pre-copy is starved out
//! of convergence), and orders the queue with a pluggable
//! [`policy::FleetPolicy`]: FIFO, smallest-working-set-first, or the
//! cycle-aware deferral of Baruchi et al. Each drain folds into a
//! byte-deterministic [`migrate::digest::FleetDigest`] with per-tenant
//! SLA costs ([`migrate::sla`]).

pub mod detect;
pub mod policy;
pub mod roster;
pub mod sched;

pub use detect::{detect, WorkloadEstimate};
pub use policy::FleetPolicy;
pub use sched::{run_fleet, run_fleet_streamed, FleetOutcome, FleetRowSink};
