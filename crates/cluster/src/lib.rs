#![warn(missing_docs)]
//! `cluster` — fleet scheduling of concurrent live migrations.
//!
//! The paper migrates one VM; this crate evacuates whole hosts of them.
//! N guests run as independent deterministic simulations whose migrations
//! cross a shared [`netsim::topology::Topology`] (per-host NICs, an
//! optional contended core switch, destination ingress links) under
//! weighted-fair arbitration. The event-driven core
//! ([`evac::evacuate`]) interleaves the per-VM
//! [`migrate::precopy::MigrationSession`]s conservatively — a binary heap
//! of session-ready times keyed by `(SimTime, VmId)` pops the laggard —
//! applies admission control (a concurrency cap plus per-hop minimum-rate
//! feasibility, so no admitted pre-copy is starved out of convergence),
//! orders each host's queue with a pluggable [`policy::FleetPolicy`]
//! (FIFO, smallest-working-set-first, or the cycle-aware deferral of
//! Baruchi et al.), and places each admitted VM on a destination with a
//! pluggable [`place::PlacementPolicy`] (greedy headroom or SLA-cost
//! aware). Each host's drain folds into a byte-deterministic
//! [`migrate::digest::FleetDigest`] with per-tenant SLA costs
//! ([`migrate::sla`]); [`sched::run_fleet`] remains the single-host entry
//! point, a thin bit-compatible adapter over the degenerate
//! one-host/no-destination plan.

pub mod detect;
pub mod eta;
pub mod evac;
pub mod place;
pub mod policy;
pub mod roster;
pub mod sched;

pub use detect::{detect, WorkloadEstimate};
pub use eta::{EtaSummary, EtaTracker, Watchdog, WatchdogFinding};
pub use evac::{
    evacuate, evacuate_streamed, CoreFault, DestSpec, EvacOutcome, EvacuationPlan, EventQueue,
    MissionControl, PipeFault, VmId, VmPlacement,
};
pub use netsim::PipeSel;
pub use place::{DestState, PlacementPolicy};
pub use policy::FleetPolicy;
pub use sched::{run_fleet, run_fleet_streamed, FleetOutcome, FleetRowSink};
