//! Shared drain rosters used by tests, the bench `fleet` subcommand and
//! the `fleet_migration` example.
//!
//! Three tenant archetypes exercise the scheduler's decision space:
//!
//! * **light** — modest allocation, small working set; converges at any
//!   reasonable share.
//! * **heavy** — a large Old-generation working set rewritten at 40 MB/s;
//!   converges comfortably alone on a gigabit uplink, slowly when sharing
//!   with lights, and not at all below ~45 MB/s. Its `min_rate` is set so
//!   admission control never lets two heavies (or a 12-way free-for-all)
//!   split the link under it.
//! * **cyclic** — a phased batch job alternating a write-heavy burst with
//!   a near-idle trough (Baruchi's motivating shape); *when* it is
//!   admitted decides whether its burst bytes hit the wire.
//!
//! Guests are 512 MiB (a trimmed kernel + page cache) so a 12-VM drain
//! stays test-sized; all rates are scaled to that footprint.

use guestos::kernel::GuestOsConfig;
use javmm::host::{HostSpec, VmTenant};
use javmm::vm::JavaVmConfig;
use jheap::mutator::{MutatorProfile, Phase};
use migrate::config::MigrationConfig;
use migrate::sla::SlaModel;
use simkit::units::{Bandwidth, MIB};
use simkit::{FaultPlan, PhaseShift, SimDuration};
use workloads::catalog;
use workloads::spec::{Category, WorkloadSpec};

/// A 512 MiB guest with a trimmed resident OS (32 MiB kernel, 48 MiB page
/// cache) — the fleet's standard small footprint.
fn small_guest() -> GuestOsConfig {
    GuestOsConfig {
        kernel_bytes: 32 * MIB,
        pagecache_bytes: 48 * MIB,
        ..GuestOsConfig::sized(512 * MIB)
    }
}

fn light_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "fleet-light",
        description: "modest allocation, small working set",
        category: Category::MediumAllocShortLived,
        alloc_rate: 8e6,
        eden_survival: 0.04,
        from_survival: 0.2,
        old_resident: 20 * MIB,
        old_max: 64 * MIB,
        old_ws_bytes: 8 * MIB,
        old_write_rate: 2e6,
        ops_per_sec: 40.0,
        safepoint_max: SimDuration::from_millis(30),
        default_young_max: 24 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.0,
    }
}

fn heavy_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "fleet-heavy",
        description: "large Old-generation working set rewritten fast",
        category: Category::LowAllocLongLived,
        alloc_rate: 5e6,
        eden_survival: 0.1,
        from_survival: 0.5,
        old_resident: 176 * MIB,
        old_max: 208 * MIB,
        old_ws_bytes: 160 * MIB,
        old_write_rate: 40e6,
        ops_per_sec: 12.0,
        safepoint_max: SimDuration::from_millis(50),
        default_young_max: 16 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.0,
    }
}

fn cyclic_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "fleet-cyclic",
        description: "phased batch job: write burst then near-idle trough",
        category: Category::MediumAllocShortLived,
        alloc_rate: 4e6,
        eden_survival: 0.05,
        from_survival: 0.3,
        old_resident: 80 * MIB,
        old_max: 112 * MIB,
        old_ws_bytes: 48 * MIB,
        old_write_rate: 2e6,
        ops_per_sec: 20.0,
        safepoint_max: SimDuration::from_millis(30),
        default_young_max: 16 * MIB,
        grow_below_interval: SimDuration::from_secs(4),
        gc_cost_scale: 1.0,
    }
}

/// The cyclic archetype's phase pair: a hard write burst over the full
/// working set, then a near-idle trough.
fn burst_profile() -> MutatorProfile {
    MutatorProfile {
        alloc_rate: 6e6,
        old_write_rate: 55e6,
        old_ws_bytes: 48 * MIB,
        ops_per_sec: 30.0,
        eden_survival: 0.05,
        from_survival: 0.3,
        safepoint_max: SimDuration::from_millis(30),
    }
}

fn trough_profile() -> MutatorProfile {
    MutatorProfile {
        alloc_rate: 2e6,
        old_write_rate: 1e6,
        old_ws_bytes: 8 * MIB,
        ops_per_sec: 10.0,
        eden_survival: 0.05,
        from_survival: 0.3,
        safepoint_max: SimDuration::from_millis(30),
    }
}

/// A cyclic tenant's phase schedule. `lead` shifts the cycle so different
/// tenants peak at different drain times (the first phase is trimmed).
fn cycle_phases(lead: SimDuration) -> Vec<Phase> {
    let burst = SimDuration::from_secs(6);
    let trough = SimDuration::from_secs(6);
    let mut phases = Vec::new();
    if !lead.is_zero() {
        phases.push(Phase {
            duration: lead,
            profile: trough_profile(),
        });
    }
    phases.push(Phase {
        duration: burst,
        profile: burst_profile(),
    });
    phases.push(Phase {
        duration: trough,
        profile: trough_profile(),
    });
    phases
}

/// A "drifting" tenant: burst/trough pairs whose widths nearly double
/// each pair (2, 4, 7, 11 s), so the instantaneous period stretches from
/// 4 s to 22 s across one long super-cycle. No single lag survives the
/// stretch, so the detector must report low confidence rather than lock
/// onto a phantom period.
fn drifting_phases() -> Vec<Phase> {
    [2u64, 4, 7, 11]
        .iter()
        .flat_map(|&secs| {
            [
                Phase {
                    duration: SimDuration::from_secs(secs),
                    profile: burst_profile(),
                },
                Phase {
                    duration: SimDuration::from_secs(secs),
                    profile: trough_profile(),
                },
            ]
        })
        .collect()
}

/// An aperiodic tenant: irregular burst/trough widths with no repeating
/// structure inside the sensing window. The honest answer is "no cycle";
/// a detector that claims one here is hallucinating.
fn aperiodic_phases() -> Vec<Phase> {
    let widths = [3u64, 9, 4, 11, 2, 8, 5, 12, 3, 7];
    widths
        .iter()
        .enumerate()
        .map(|(i, &secs)| Phase {
            duration: SimDuration::from_secs(secs),
            profile: if i % 2 == 0 {
                burst_profile()
            } else {
                trough_profile()
            },
        })
        .collect()
}

fn light(name: &str, seed: u64) -> VmTenant {
    let mut vm = JavaVmConfig::paper(light_spec(), true, seed);
    vm.os = small_guest();
    VmTenant::new(name, vm, MigrationConfig::javmm_default())
        .with_min_rate(Bandwidth::from_mbytes_per_sec(20.0))
        .with_sla(SlaModel::default_web())
}

fn heavy(name: &str, seed: u64) -> VmTenant {
    let mut vm = JavaVmConfig::paper(heavy_spec(), false, seed);
    vm.os = small_guest();
    VmTenant::new(name, vm, MigrationConfig::xen_default())
        .with_weight(3.0)
        .with_min_rate(Bandwidth::from_mbytes_per_sec(65.0))
        .with_sla(SlaModel::default_batch())
}

fn cyclic(name: &str, seed: u64, lead: SimDuration) -> VmTenant {
    let mut vm = JavaVmConfig::paper(cyclic_spec(), true, seed);
    vm.os = small_guest();
    let mut migration = MigrationConfig::javmm_default();
    // A cyclic admitted mid-burst diverges until the trough arrives; give
    // it the iteration budget to ride a full burst out instead of tripping
    // the default cap and eating a long degraded stop-and-copy.
    migration.stop.max_iterations = 60;
    VmTenant::new(name, vm, migration)
        .with_phases(cycle_phases(lead))
        .with_min_rate(Bandwidth::from_mbytes_per_sec(20.0))
        .with_sla(SlaModel::default_batch())
}

/// A tenant whose cycle drifts: each burst/trough pair is wider than the
/// last, so no stable period exists for the detector to lock onto.
fn drifting(name: &str, seed: u64) -> VmTenant {
    let mut vm = JavaVmConfig::paper(cyclic_spec(), true, seed);
    vm.os = small_guest();
    let mut migration = MigrationConfig::javmm_default();
    migration.stop.max_iterations = 60;
    VmTenant::new(name, vm, migration)
        .with_phases(drifting_phases())
        .with_min_rate(Bandwidth::from_mbytes_per_sec(20.0))
        .with_sla(SlaModel::default_batch())
}

/// A tenant with no periodic structure at all: irregular burst widths
/// that never repeat within the sensing window.
fn aperiodic(name: &str, seed: u64) -> VmTenant {
    let mut vm = JavaVmConfig::paper(cyclic_spec(), true, seed);
    vm.os = small_guest();
    let mut migration = MigrationConfig::javmm_default();
    migration.stop.max_iterations = 60;
    VmTenant::new(name, vm, migration)
        .with_phases(aperiodic_phases())
        .with_min_rate(Bandwidth::from_mbytes_per_sec(20.0))
        .with_sla(SlaModel::default_batch())
}

/// A tenant that looks perfectly cyclic during warmup, then shifts phase
/// mid-drain (a [`PhaseShift`] fault jumps its mutator 3 s forward after
/// 20 s of running time). Whatever phase the detector measured before the
/// shift is wrong afterwards — the drill for estimate staleness.
fn shifty(name: &str, seed: u64) -> VmTenant {
    let mut vm = JavaVmConfig::paper(cyclic_spec(), true, seed);
    vm.os = small_guest();
    let mut migration = MigrationConfig::javmm_default();
    migration.stop.max_iterations = 60;
    migration.faults = FaultPlan {
        phase_shift: Some(PhaseShift {
            after: SimDuration::from_secs(20),
            jump: SimDuration::from_secs(3),
        }),
        ..FaultPlan::none()
    };
    VmTenant::new(name, vm, migration)
        .with_phases(cycle_phases(SimDuration::ZERO))
        .with_min_rate(Bandwidth::from_mbytes_per_sec(20.0))
        .with_sla(SlaModel::default_batch())
}

/// A one-VM roster reproducing the repo's `derby-assisted-seed3`
/// precopy-equivalence golden: the paper's 2 GiB guest, the quick-scenario
/// warmup/tail, a gigabit uplink and FIFO make the drain degenerate to
/// exactly `run_scenario_recorded`.
pub fn solo(seed: u64) -> HostSpec {
    HostSpec::new("solo", seed).tenant(VmTenant::new(
        format!("derby-assisted-seed{seed}"),
        JavaVmConfig::paper(catalog::derby(), true, seed),
        MigrationConfig::javmm_default(),
    ))
}

/// A 4-VM drain small enough for examples and CI smoke runs: one of each
/// archetype plus a second light, 8 s of warmup.
pub fn drain4(seed: u64) -> HostSpec {
    let mut host = HostSpec::new("drain4", seed)
        .tenant(heavy("heavy-0", seed.wrapping_add(1)))
        .tenant(light("light-0", seed.wrapping_add(2)))
        .tenant(cyclic(
            "cyclic-0",
            seed.wrapping_add(3),
            SimDuration::from_secs(1),
        ))
        .tenant(light("light-1", seed.wrapping_add(4)));
    host.warmup = SimDuration::from_secs(8);
    host.tail = SimDuration::from_secs(2);
    host
}

/// The 12-VM evaluation roster, ordered adversarially for FIFO: both
/// heavies lead the queue (a naive drain admits them together and they
/// starve each other; admission control serializes them), and the cyclics
/// sit where FIFO tends to reach them mid-burst.
pub fn drain12(seed: u64) -> HostSpec {
    let s = |k: u64| seed.wrapping_add(k);
    let mut host = HostSpec::new("drain12", seed)
        .tenant(heavy("heavy-0", s(1)))
        .tenant(heavy("heavy-1", s(2)))
        .tenant(cyclic("cyclic-0", s(3), SimDuration::from_secs(10)))
        .tenant(light("light-0", s(4)))
        .tenant(light("light-1", s(5)))
        .tenant(cyclic("cyclic-1", s(6), SimDuration::from_secs(4)))
        .tenant(light("light-2", s(7)))
        .tenant(light("light-3", s(8)))
        .tenant(cyclic("cyclic-2", s(9), SimDuration::from_secs(7)))
        .tenant(light("light-4", s(10)))
        .tenant(light("light-5", s(11)))
        .tenant(light("light-6", s(12)));
    // Warm long enough that the observatory can cover two full cycles of
    // the longest-lead cyclic (22 s) by the time the drain reaches it:
    // the detector needs the period within half its sensing window.
    host.warmup = SimDuration::from_secs(24);
    host.tail = SimDuration::from_secs(2);
    host
}

/// The 6-VM adversarial roster: three tenants engineered to defeat naive
/// cycle detection (drifting period, no period, mid-drain phase shift)
/// alongside a heavy and two lights. A detector that stays honest here —
/// low confidence on the adversaries, so the cycle-aware policy degrades
/// to its working-set fallback — never does worse than `swsf`; a detector
/// that hallucinates periods schedules the adversaries into their bursts.
pub fn adversarial(seed: u64) -> HostSpec {
    let s = |k: u64| seed.wrapping_add(k);
    let mut host = HostSpec::new("adversarial", seed)
        .tenant(heavy("heavy-0", s(1)))
        .tenant(drifting("drifting-0", s(2)))
        .tenant(light("light-0", s(3)))
        .tenant(aperiodic("aperiodic-0", s(4)))
        .tenant(shifty("shifty-0", s(5)))
        .tenant(light("light-1", s(6)));
    host.warmup = SimDuration::from_secs(12);
    host.tail = SimDuration::from_secs(2);
    host
}

/// One rack of the evacuation fleet: a heavy, two cyclics peaking at
/// different times, and nine lights — light-leaning so four racks drain
/// in bench-sized time, with enough heavies fleet-wide to contend the
/// core switch and enough cyclics to keep admission order interesting.
fn rack(rack: usize, seed: u64) -> HostSpec {
    let s = |k: u64| seed.wrapping_add(100 * rack as u64 + k);
    let n = |stem: &str, i: usize| format!("{stem}-r{rack}-{i}");
    let mut host = HostSpec::new(format!("rack{rack}"), seed.wrapping_add(rack as u64))
        .tenant(heavy(&n("heavy", 0), s(1)))
        .tenant(cyclic(
            &n("cyclic", 0),
            s(2),
            SimDuration::from_secs(1 + 2 * rack as u64),
        ))
        .tenant(light(&n("light", 0), s(3)))
        .tenant(light(&n("light", 1), s(4)))
        .tenant(light(&n("light", 2), s(5)))
        .tenant(cyclic(
            &n("cyclic", 1),
            s(6),
            SimDuration::from_secs(4 + rack as u64),
        ))
        .tenant(light(&n("light", 3), s(7)))
        .tenant(light(&n("light", 4), s(8)))
        .tenant(light(&n("light", 5), s(9)))
        .tenant(light(&n("light", 6), s(10)))
        .tenant(light(&n("light", 7), s(11)))
        .tenant(light(&n("light", 8), s(12)));
    host.warmup = SimDuration::from_secs(8);
    host.tail = SimDuration::from_secs(2);
    host
}

/// The 48-VM evacuation fleet: four 12-VM racks.
pub fn evacuate48(seed: u64) -> Vec<HostSpec> {
    (0..4).map(|r| rack(r, seed)).collect()
}

/// The destination pool for [`evacuate48`]: 72 slots across one WAN edge
/// site and three LAN racks. The LAN racks alone can hold the whole
/// 48-VM fleet, so using the 40 MB/s WAN site is a *choice*: random
/// placement spreads onto it blindly and pays in brownout and eviction
/// time; SLA-aware placement only sends tenants that can afford the slow
/// path.
pub fn evacuate_destinations() -> Vec<javmm::host::DestSpec> {
    use javmm::host::DestSpec;
    vec![
        DestSpec::new("edge-wan", 20)
            .with_ingress(Bandwidth::from_mbytes_per_sec(40.0))
            .with_wan(),
        DestSpec::new("rack-d1", 20).with_ingress(Bandwidth::from_mbytes_per_sec(125.0)),
        DestSpec::new("rack-d2", 20).with_ingress(Bandwidth::from_mbytes_per_sec(125.0)),
        DestSpec::new("rack-d3", 12),
    ]
}

/// The core switch for [`evacuate48`]: 300 MB/s shared by four gigabit
/// host NICs, so a naive all-at-once drain contends the fabric core.
pub fn evacuate_core() -> netsim::topology::LinkSpec {
    netsim::topology::LinkSpec::lan("core", Bandwidth::from_mbytes_per_sec(300.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_are_well_formed() {
        assert_eq!(solo(3).tenants.len(), 1);
        assert_eq!(drain4(7).tenants.len(), 4);
        let d = drain12(7);
        assert_eq!(d.tenants.len(), 12);
        // Heavies must be infeasible pairwise under min-rate admission:
        // two weight-3 subscribers split a gigabit link 62.5/62.5 MB/s,
        // under the 65 MB/s floor.
        let heavy = &d.tenants[0];
        assert!(heavy.weight > 1.0);
        assert!(2.0 * heavy.min_rate.bytes_per_sec() > d.uplink.bytes_per_sec());
    }

    #[test]
    fn adversarial_roster_is_well_formed() {
        let host = adversarial(7);
        assert_eq!(host.tenants.len(), 6);
        // The shifty tenant carries the phase-shift fault; the other
        // adversaries rely on phase structure alone.
        let shifty = &host.tenants[4];
        assert!(shifty.migration.faults.phase_shift.is_some());
        assert!(host.tenants[1].migration.faults.phase_shift.is_none());
        // Drifting widths grow; aperiodic widths never repeat a pair.
        let drift = host.tenants[1].phases.as_ref().unwrap();
        assert!(drift.windows(2).any(|w| w[0].duration != w[1].duration));
        let aper = host.tenants[3].phases.as_ref().unwrap();
        assert_eq!(aper.len(), 10);
    }

    #[test]
    fn evacuation_fleet_is_well_formed() {
        let sources = evacuate48(7);
        assert_eq!(sources.len(), 4);
        let population: usize = sources.iter().map(|h| h.tenants.len()).sum();
        assert_eq!(population, 48);
        let dests = evacuate_destinations();
        let slots: u64 = dests.iter().map(|d| u64::from(d.slots)).sum();
        assert!(
            slots >= population as u64,
            "{slots} slots for {population} VMs"
        );
        // The WAN edge site must actually be the slow path for the SLA
        // policy to route around.
        assert!(dests[0].wan);
        assert!(dests[0].ingress < dests[1].ingress);
        // Names must be unique fleet-wide (digests key on them).
        let mut names: Vec<&str> = sources
            .iter()
            .flat_map(|h| h.tenants.iter().map(|t| t.name.as_str()))
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 48);
    }

    #[test]
    fn cycle_phases_respect_lead() {
        let p = cycle_phases(SimDuration::from_secs(3));
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].duration, SimDuration::from_secs(3));
        // Leads shift the cycle; zero lead starts at the burst.
        assert_eq!(cycle_phases(SimDuration::ZERO).len(), 2);
    }
}
