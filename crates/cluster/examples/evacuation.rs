//! The README's evacuation walkthrough: drain the 48-VM, four-rack
//! fleet onto the standard destination pool under each placement
//! policy and print where everyone landed.
//!
//! ```console
//! $ cargo run --release -p cluster --example evacuation
//! ```

use cluster::{evacuate, roster, EvacuationPlan, FleetPolicy, PlacementPolicy};

fn main() {
    for placement in [
        PlacementPolicy::SlaAware,
        PlacementPolicy::Greedy,
        PlacementPolicy::Random(7),
    ] {
        let plan = EvacuationPlan::new("evacuate48", roster::evacuate48(7))
            .destinations(roster::evacuate_destinations())
            .core(roster::evacuate_core())
            .placement(placement);
        let out = evacuate(&plan, FleetPolicy::CycleAware).expect("evacuation failed");

        let mut counts: Vec<(String, usize)> = plan
            .destinations
            .iter()
            .map(|d| (d.name.clone(), 0))
            .collect();
        for p in &out.placements {
            if let Some(d) = p.dest {
                counts[d].1 += 1;
            }
        }
        let counts = counts
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:>8}: evicted {} VMs in {:.1}s, SLA cost {:.1}  [{}]",
            placement.name(),
            out.placements.len(),
            out.eviction_ns as f64 / 1e9,
            out.sla_total.total(),
            counts,
        );
    }
}
