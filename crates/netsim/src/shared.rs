//! A shared migration uplink arbitrated across concurrent subscribers.
//!
//! A host drain migrates many VMs over one physical NIC. [`SharedUplink`]
//! models that pipe: subscribers (one per in-flight migration) register
//! with a weight and a minimum-rate requirement, and the uplink splits its
//! capacity into **weighted fair shares** — subscriber *i* gets
//! `capacity · wᵢ / Σw`. The split is work-conserving: the active set
//! always absorbs the full capacity, and shares are recomputed whenever a
//! subscriber joins or leaves.
//!
//! Two consumption styles are supported:
//!
//! * **Share-based** (the fleet scheduler): each migration engine owns a
//!   private [`Link`](crate::Link) re-rated to [`SharedUplink::share`]
//!   whenever the active set changes. Arbitration is then
//!   iteration-granular — conservative, and exactly reproducible.
//! * **Tick-based**: [`SharedUplink::split_budget`] divides one quantum's
//!   byte budget across all subscribers with per-subscriber fractional
//!   carry, conserving every byte of `capacity · dt` over time.
//!
//! The minimum-rate requirement is what admission control checks: a
//! pre-copy migration only converges while its share outruns the VM's
//! dirty rate, so admitting one VM too many can starve *every* in-flight
//! migration below convergence. [`SharedUplink::can_admit`] answers
//! whether a candidate fits without pushing any active subscriber (or the
//! candidate itself) under its declared minimum.
//!
//! Everything here is deterministic: subscriber order is registration
//! order, shares are pure `f64` arithmetic on that order, and the carry
//! accumulators evolve identically for identical call sequences.

use crate::link::Link;
use simkit::units::Bandwidth;
use simkit::SimDuration;

/// Identifies one subscriber of a [`SharedUplink`].
///
/// Ids are never reused within one uplink's lifetime, so a stale id of an
/// unsubscribed migration cannot alias a later one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriberId(u64);

#[derive(Debug, Clone)]
struct Subscriber {
    id: SubscriberId,
    weight: f64,
    min_rate: Bandwidth,
    /// Fractional-byte residue for [`SharedUplink::split_budget`].
    carry: f64,
}

/// A fixed-capacity uplink shared by concurrent migrations.
///
/// # Examples
///
/// ```
/// use netsim::shared::SharedUplink;
/// use simkit::units::Bandwidth;
///
/// let mut up = SharedUplink::new(Bandwidth::from_mbytes_per_sec(120.0));
/// let a = up.subscribe(1.0, Bandwidth::from_mbytes_per_sec(10.0));
/// let b = up.subscribe(2.0, Bandwidth::from_mbytes_per_sec(10.0));
/// assert_eq!(up.share(a).bytes_per_sec(), 40_000_000.0);
/// assert_eq!(up.share(b).bytes_per_sec(), 80_000_000.0);
/// up.unsubscribe(a);
/// assert_eq!(up.share(b).bytes_per_sec(), 120_000_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct SharedUplink {
    capacity: Bandwidth,
    subscribers: Vec<Subscriber>,
    next_id: u64,
    /// Fractional-byte residue for the aggregate, whole-pipe view of the
    /// uplink ([`Capacity::budget`](crate::Capacity)); the per-subscriber
    /// carries used by [`SharedUplink::split_budget`] are independent.
    agg_carry: f64,
    /// Total bytes accounted through the aggregate view.
    agg_bytes_sent: u64,
}

impl SharedUplink {
    /// Creates an uplink with the given capacity.
    pub fn new(capacity: Bandwidth) -> Self {
        Self {
            capacity,
            subscribers: Vec::new(),
            next_id: 0,
            agg_carry: 0.0,
            agg_bytes_sent: 0,
        }
    }

    /// The uplink's total capacity.
    pub fn capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Re-rates the whole pipe mid-run (e.g. a WAN link degrading); all
    /// subscriber shares scale from the next [`SharedUplink::share`] call.
    pub fn set_capacity(&mut self, capacity: Bandwidth) {
        self.capacity = capacity;
    }

    /// One quantum's whole-byte budget for the pipe as a whole, undivided
    /// by subscriber arbitration. This is the uplink's
    /// [`Capacity`](crate::Capacity) view; it shares the carry arithmetic
    /// of [`Link::budget`] so both pipes meter identically.
    pub fn aggregate_budget(&mut self, dt: SimDuration) -> u64 {
        crate::capacity::carry_budget(self.capacity, dt, &mut self.agg_carry)
    }

    /// Accounts `bytes` against the aggregate traffic counter.
    pub fn record_aggregate_send(&mut self, bytes: u64) {
        self.agg_bytes_sent += bytes;
    }

    /// Total bytes accounted through the aggregate view.
    pub fn aggregate_bytes_sent(&self) -> u64 {
        self.agg_bytes_sent
    }

    /// Number of active subscribers.
    pub fn active(&self) -> usize {
        self.subscribers.len()
    }

    /// Registers a subscriber with the given fair-share `weight` and
    /// declared minimum convergence rate. Shares of existing subscribers
    /// shrink accordingly.
    ///
    /// # Panics
    ///
    /// If `weight` is not strictly positive and finite.
    pub fn subscribe(&mut self, weight: f64, min_rate: Bandwidth) -> SubscriberId {
        assert!(
            weight.is_finite() && weight > 0.0,
            "subscriber weight must be positive, got {weight}"
        );
        let id = SubscriberId(self.next_id);
        self.next_id += 1;
        self.subscribers.push(Subscriber {
            id,
            weight,
            min_rate,
            carry: 0.0,
        });
        id
    }

    /// Removes a subscriber (its migration finished or was aborted);
    /// remaining shares grow accordingly. Unknown ids are ignored.
    pub fn unsubscribe(&mut self, id: SubscriberId) {
        self.subscribers.retain(|s| s.id != id);
    }

    /// Sum of all active subscriber weights (0 when idle). Placement
    /// scoring uses this for hypothetical post-join share estimates.
    pub fn total_weight(&self) -> f64 {
        self.subscribers.iter().map(|s| s.weight).sum()
    }

    /// Aggregate declared minimum-rate demand subscribed on the pipe, in
    /// bytes/second: the floor the active set needs to keep every
    /// pre-copy converging. Pipe timelines sample this next to
    /// utilization — demand near (or past) capacity is the admission
    /// pressure the SLO watchdog watches for.
    pub fn queued_demand(&self) -> f64 {
        self.subscribers
            .iter()
            .map(|s| s.min_rate.bytes_per_sec())
            .sum()
    }

    /// The weighted fair share of subscriber `id`: `capacity · w / Σw`.
    ///
    /// A sole subscriber's share is *exactly* the capacity (no floating
    /// point detour), which is what lets a 1-VM fleet reproduce the
    /// dedicated-link goldens bit for bit.
    ///
    /// # Panics
    ///
    /// If `id` is not an active subscriber.
    pub fn share(&self, id: SubscriberId) -> Bandwidth {
        let sub = self
            .subscribers
            .iter()
            .find(|s| s.id == id)
            .expect("share() of an inactive subscriber");
        if self.subscribers.len() == 1 {
            return self.capacity;
        }
        let fraction = sub.weight / self.total_weight();
        Bandwidth::from_bytes_per_sec(self.capacity.bytes_per_sec() * fraction)
    }

    /// Whether a candidate with (`weight`, `min_rate`) can be admitted
    /// without starving anyone: after the hypothetical join, every active
    /// subscriber — and the candidate itself — must keep a share at or
    /// above its declared minimum rate.
    pub fn can_admit(&self, weight: f64, min_rate: Bandwidth) -> bool {
        let total = self.total_weight() + weight;
        let cap = self.capacity.bytes_per_sec();
        if cap * (weight / total) < min_rate.bytes_per_sec() {
            return false;
        }
        self.subscribers
            .iter()
            .all(|s| cap * (s.weight / total) >= s.min_rate.bytes_per_sec())
    }

    /// Splits one quantum's byte budget `capacity · dt` across all active
    /// subscribers in registration order, carrying per-subscriber
    /// fractional bytes so long runs conserve capacity exactly like a
    /// dedicated [`Link`] would.
    pub fn split_budget(&mut self, dt: SimDuration) -> Vec<(SubscriberId, u64)> {
        let total = self.total_weight();
        let cap = self.capacity.bytes_per_sec() * dt.as_secs_f64();
        self.subscribers
            .iter_mut()
            .map(|s| {
                let exact = cap * (s.weight / total) + s.carry;
                let whole = exact as u64;
                s.carry = exact - whole as f64;
                (s.id, whole)
            })
            .collect()
    }

    /// A dedicated [`Link`] rated at subscriber `id`'s current share —
    /// how the fleet scheduler hands each migration engine its slice of
    /// the pipe.
    pub fn link_for(&self, id: SubscriberId) -> Link {
        Link::new(self.share(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::Bandwidth;

    fn mb(x: f64) -> Bandwidth {
        Bandwidth::from_mbytes_per_sec(x)
    }

    #[test]
    fn sole_subscriber_gets_exact_capacity() {
        let mut up = SharedUplink::new(Bandwidth::gigabit_ethernet());
        let a = up.subscribe(3.0, mb(1.0));
        assert_eq!(
            up.share(a).bytes_per_sec(),
            Bandwidth::gigabit_ethernet().bytes_per_sec(),
            "single subscriber must see the undivided capacity"
        );
    }

    #[test]
    fn weighted_shares_sum_to_capacity() {
        let mut up = SharedUplink::new(mb(120.0));
        let ids = [
            up.subscribe(1.0, mb(1.0)),
            up.subscribe(2.0, mb(1.0)),
            up.subscribe(3.0, mb(1.0)),
        ];
        let total: f64 = ids.iter().map(|&id| up.share(id).bytes_per_sec()).sum();
        assert!((total - 120_000_000.0).abs() < 1.0, "shares sum {total}");
        assert!(up.share(ids[2]).bytes_per_sec() > up.share(ids[0]).bytes_per_sec());
    }

    #[test]
    fn admission_respects_min_rates() {
        let mut up = SharedUplink::new(mb(100.0));
        up.subscribe(1.0, mb(40.0));
        // A second equal-weight subscriber would cut the first to 50 — fine
        // for its 40 minimum but not for a candidate demanding 60.
        assert!(up.can_admit(1.0, mb(40.0)));
        assert!(!up.can_admit(1.0, mb(60.0)), "candidate starves itself");
        // Three ways: 33.3 each — the incumbent's 40 minimum now breaks.
        up.subscribe(1.0, mb(20.0));
        assert!(!up.can_admit(1.0, mb(10.0)), "incumbent would starve");
    }

    #[test]
    fn split_budget_conserves_capacity() {
        let mut up = SharedUplink::new(Bandwidth::from_bytes_per_sec(1000.0));
        up.subscribe(1.0, mb(0.001));
        up.subscribe(2.0, mb(0.001));
        up.subscribe(4.0, mb(0.001));
        let mut totals = [0u64; 3];
        for _ in 0..700 {
            for (i, (_, b)) in up
                .split_budget(SimDuration::from_millis(1))
                .iter()
                .enumerate()
            {
                totals[i] += b;
            }
        }
        // 0.7 s at 1000 B/s = 700 bytes, split 1:2:4. Each subscriber may
        // hold at most one fractional byte in its carry accumulator.
        let sum = totals.iter().sum::<u64>();
        assert!((697..=700).contains(&sum), "sum {sum}");
        for (total, expect) in totals.iter().zip([100u64, 200, 400]) {
            assert!(
                expect - total <= 1,
                "subscriber got {total}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn ids_are_never_reused() {
        let mut up = SharedUplink::new(mb(10.0));
        let a = up.subscribe(1.0, mb(1.0));
        up.unsubscribe(a);
        let b = up.subscribe(1.0, mb(1.0));
        assert_ne!(a, b);
    }
}
