//! A multi-host migration fabric: per-host NICs, a contended core switch,
//! and destination NICs.
//!
//! A whole-rack evacuation pushes many hosts' migration traffic through
//! shared infrastructure at once. [`Topology`] models the three hops that
//! traffic crosses — the source host's egress NIC, an optional core
//! switch shared by *all* hosts, and the destination host's ingress NIC —
//! each as an independent [`SharedUplink`] with the same weighted-fair
//! arbitration a single-host drain uses. A migration is a [`FlowId`]:
//! opening it subscribes the flow to every hop on its path, and its
//! end-to-end rate is the minimum of its per-hop fair shares (the
//! bottleneck hop binds, exactly as max-min fairness would for a single
//! congested resource on the path).
//!
//! The degenerate topology — one source host, no core switch, no
//! destination NICs — is a single `SharedUplink` wearing a new name:
//! a flow's rate *is* its egress share, bit for bit, because the
//! minimum over one operand returns that operand unchanged. That identity
//! is what keeps the single-host drain digests byte-stable under the
//! evacuation-core redesign (see `cluster::evac`).
//!
//! Hops that are not part of the topology are *absent*, never "infinitely
//! fast": an absent core switch contributes no share to minimise over and
//! no subscription to arbitrate, so it cannot perturb the arithmetic of
//! the hops that do exist.

use crate::capacity::Capacity;
use crate::shared::{SharedUplink, SubscriberId};
use simkit::telemetry::SampleSeries;
use simkit::units::Bandwidth;
use simkit::{SimDuration, SimTime};

/// Describes one physical link of the fabric: a name for reporting, its
/// capacity, and whether it is a WAN path (slow, long-haul — placement
/// policies may treat WAN destinations as a last resort).
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Human-readable name, surfaced in bench output.
    pub name: String,
    /// Link capacity.
    pub bandwidth: Bandwidth,
    /// Whether the link crosses a WAN (descriptive; the rate model is the
    /// capacity itself).
    pub wan: bool,
}

impl LinkSpec {
    /// A LAN link with the given name and capacity.
    pub fn lan(name: impl Into<String>, bandwidth: Bandwidth) -> Self {
        Self {
            name: name.into(),
            bandwidth,
            wan: false,
        }
    }

    /// A WAN link with the given name and capacity.
    pub fn wan(name: impl Into<String>, bandwidth: Bandwidth) -> Self {
        Self {
            name: name.into(),
            bandwidth,
            wan: true,
        }
    }
}

/// Identifies one end-to-end migration flow across a [`Topology`].
///
/// Ids are never reused within one topology's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(usize);

/// Selects one pipe of a [`Topology`] — a source-host egress NIC, the
/// core trunk, or a destination-host ingress NIC. Mid-run re-rating
/// ([`Topology::set_pipe_rate`]) and fault schedules address pipes with
/// this selector rather than special-casing the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeSel {
    /// Source host `i`'s egress NIC.
    Egress(usize),
    /// The core switch every inter-rack flow crosses.
    Core,
    /// Destination host `i`'s ingress NIC.
    Ingress(usize),
}

impl PipeSel {
    /// Short stable label for digests and causal traces (`egress3`,
    /// `core`, `ingress12`).
    pub fn label(self) -> String {
        match self {
            Self::Egress(i) => format!("egress{i}"),
            Self::Core => "core".to_string(),
            Self::Ingress(i) => format!("ingress{i}"),
        }
    }
}

#[derive(Debug, Clone)]
struct FlowPath {
    src: usize,
    dst: Option<usize>,
    egress_sub: SubscriberId,
    core_sub: Option<SubscriberId>,
    ingress_sub: Option<SubscriberId>,
}

/// The migration fabric: per-source egress NICs, an optional shared core
/// switch, and per-destination ingress NICs.
///
/// # Examples
///
/// ```
/// use netsim::topology::{LinkSpec, Topology};
/// use simkit::units::Bandwidth;
///
/// // Two source hosts drain through a contended core into one destination.
/// let mut topo = Topology::new(
///     vec![
///         LinkSpec::lan("src0", Bandwidth::from_mbytes_per_sec(125.0)),
///         LinkSpec::lan("src1", Bandwidth::from_mbytes_per_sec(125.0)),
///     ],
///     Some(LinkSpec::lan("core", Bandwidth::from_mbytes_per_sec(150.0))),
///     vec![LinkSpec::lan("dst0", Bandwidth::from_mbytes_per_sec(500.0))],
/// );
/// let min = Bandwidth::from_mbytes_per_sec(10.0);
/// let a = topo.open_flow(0, Some(0), 1.0, min);
/// let b = topo.open_flow(1, Some(0), 1.0, min);
/// // Each flow gets its full NIC egress but only half the core switch.
/// assert_eq!(topo.flow_rate(a).bytes_per_sec(), 75_000_000.0);
/// topo.close_flow(a);
/// assert_eq!(topo.flow_rate(b).bytes_per_sec(), 125_000_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    egress_specs: Vec<LinkSpec>,
    core_spec: Option<LinkSpec>,
    ingress_specs: Vec<LinkSpec>,
    egress: Vec<SharedUplink>,
    core: Option<SharedUplink>,
    ingress: Vec<SharedUplink>,
    flows: Vec<Option<FlowPath>>,
}

impl Topology {
    /// Builds a fabric from link specs: one egress NIC per source host, an
    /// optional core switch every flow crosses, and one ingress NIC per
    /// destination host.
    ///
    /// # Panics
    ///
    /// If `egress` is empty.
    pub fn new(egress: Vec<LinkSpec>, core: Option<LinkSpec>, ingress: Vec<LinkSpec>) -> Self {
        assert!(!egress.is_empty(), "topology needs at least one source NIC");
        let mk = |s: &LinkSpec| SharedUplink::new(s.bandwidth);
        Self {
            egress: egress.iter().map(mk).collect(),
            core: core.as_ref().map(mk),
            ingress: ingress.iter().map(mk).collect(),
            egress_specs: egress,
            core_spec: core,
            ingress_specs: ingress,
            flows: Vec::new(),
        }
    }

    /// The degenerate single-host fabric: one egress NIC, no core switch,
    /// no destination NICs. A flow's end-to-end rate over this topology is
    /// its egress fair share *exactly* — the identity the single-host
    /// drain adapter relies on for byte-stable digests.
    pub fn single_uplink(capacity: Bandwidth) -> Self {
        Self::new(vec![LinkSpec::lan("uplink", capacity)], None, Vec::new())
    }

    /// Number of source-host egress NICs.
    pub fn sources(&self) -> usize {
        self.egress.len()
    }

    /// Number of destination-host ingress NICs.
    pub fn destinations(&self) -> usize {
        self.ingress.len()
    }

    /// Spec of source host `src`'s egress NIC.
    pub fn egress_spec(&self, src: usize) -> &LinkSpec {
        &self.egress_specs[src]
    }

    /// Spec of destination host `dst`'s ingress NIC.
    pub fn ingress_spec(&self, dst: usize) -> &LinkSpec {
        &self.ingress_specs[dst]
    }

    /// Spec of the core switch, if the fabric has one.
    pub fn core_spec(&self) -> Option<&LinkSpec> {
        self.core_spec.as_ref()
    }

    /// In-flight flows leaving source host `src` (its egress subscriber
    /// count) — the per-host concurrency the admission loop throttles on.
    pub fn host_active(&self, src: usize) -> usize {
        self.egress[src].active()
    }

    /// Opens an end-to-end flow from source host `src` to destination
    /// `dst` (or to nowhere in particular on a destination-less fabric),
    /// subscribing it to every hop on its path with fair-share `weight`
    /// and declared minimum `min_rate`.
    ///
    /// # Panics
    ///
    /// If `src`/`dst` are out of range, or `dst` is `None` while the
    /// fabric has destination NICs (a placed evacuation must name one).
    pub fn open_flow(
        &mut self,
        src: usize,
        dst: Option<usize>,
        weight: f64,
        min_rate: Bandwidth,
    ) -> FlowId {
        assert!(
            dst.is_some() || self.ingress.is_empty(),
            "flows over a fabric with destination NICs must name a destination"
        );
        let egress_sub = self.egress[src].subscribe(weight, min_rate);
        let core_sub = self.core.as_mut().map(|c| c.subscribe(weight, min_rate));
        let ingress_sub = dst.map(|d| self.ingress[d].subscribe(weight, min_rate));
        let id = FlowId(self.flows.len());
        self.flows.push(Some(FlowPath {
            src,
            dst,
            egress_sub,
            core_sub,
            ingress_sub,
        }));
        id
    }

    /// Closes a flow (its migration finished or aborted), releasing its
    /// subscription on every hop. Closing an already-closed flow panics —
    /// that is a scheduler accounting bug, not a recoverable state.
    pub fn close_flow(&mut self, flow: FlowId) {
        let path = self.flows[flow.0]
            .take()
            .expect("close_flow() of an already-closed flow");
        self.egress[path.src].unsubscribe(path.egress_sub);
        if let (Some(core), Some(sub)) = (self.core.as_mut(), path.core_sub) {
            core.unsubscribe(sub);
        }
        if let (Some(d), Some(sub)) = (path.dst, path.ingress_sub) {
            self.ingress[d].unsubscribe(sub);
        }
    }

    /// The flow's end-to-end rate: the minimum of its fair shares on every
    /// hop along the path. The bottleneck hop's share is returned
    /// *unchanged* — in particular, over a single-hop path the result is
    /// the egress share bit for bit.
    ///
    /// # Panics
    ///
    /// If the flow is closed.
    pub fn flow_rate(&self, flow: FlowId) -> Bandwidth {
        let path = self.flows[flow.0]
            .as_ref()
            .expect("flow_rate() of a closed flow");
        let mut rate = self.egress[path.src].share(path.egress_sub);
        if let (Some(core), Some(sub)) = (self.core.as_ref(), path.core_sub) {
            let share = core.share(sub);
            if share.bytes_per_sec() < rate.bytes_per_sec() {
                rate = share;
            }
        }
        if let (Some(d), Some(sub)) = (path.dst, path.ingress_sub) {
            let share = self.ingress[d].share(sub);
            if share.bytes_per_sec() < rate.bytes_per_sec() {
                rate = share;
            }
        }
        rate
    }

    /// Whether a candidate flow `src → dst` with (`weight`, `min_rate`)
    /// can join without starving any subscriber on any hop of its path
    /// below its declared minimum ([`SharedUplink::can_admit`] per hop).
    pub fn can_admit(
        &self,
        src: usize,
        dst: Option<usize>,
        weight: f64,
        min_rate: Bandwidth,
    ) -> bool {
        if !self.egress[src].can_admit(weight, min_rate) {
            return false;
        }
        if let Some(core) = self.core.as_ref() {
            if !core.can_admit(weight, min_rate) {
                return false;
            }
        }
        if let Some(d) = dst {
            if !self.ingress[d].can_admit(weight, min_rate) {
                return false;
            }
        }
        true
    }

    /// Whether every hop on the path `src → dst` is idle. The admission
    /// loop's deadlock-avoidance clause: a VM whose minimum rate no share
    /// could ever satisfy is still admitted once its whole path is quiet,
    /// generalising the single-uplink `active() == 0` escape hatch.
    pub fn path_idle(&self, src: usize, dst: Option<usize>) -> bool {
        if self.egress[src].active() != 0 {
            return false;
        }
        if let Some(core) = self.core.as_ref() {
            if core.active() != 0 {
                return false;
            }
        }
        if let Some(d) = dst {
            if self.ingress[d].active() != 0 {
                return false;
            }
        }
        true
    }

    /// The rate a candidate flow would get if admitted now: the minimum
    /// over its path of each hop's hypothetical post-join share
    /// `capacity · w / (Σw + w)`. Placement policies use this to score
    /// destinations; it is an estimate of the *initial* rate only (shares
    /// re-balance as flows come and go).
    pub fn predicted_rate(&self, src: usize, dst: Option<usize>, weight: f64) -> Bandwidth {
        let post_join = |up: &SharedUplink| {
            let total = up.total_weight() + weight;
            up.capacity().bytes_per_sec() * (weight / total)
        };
        let mut rate = post_join(&self.egress[src]);
        if let Some(core) = self.core.as_ref() {
            rate = rate.min(post_join(core));
        }
        if let Some(d) = dst {
            rate = rate.min(post_join(&self.ingress[d]));
        }
        Bandwidth::from_bytes_per_sec(rate)
    }

    /// The core switch's *current* rate (it may have been re-rated
    /// mid-run), or `None` on a core-less fabric.
    pub fn core_rate(&self) -> Option<Bandwidth> {
        self.pipe_rate(PipeSel::Core)
    }

    /// Re-rates the core switch mid-run (fault injection: a degraded
    /// inter-rack trunk). Every in-flight flow crossing the core sees the
    /// new rate from its next [`Topology::flow_rate`] re-grant — the
    /// existing re-rating path, no special casing. Returns whether the
    /// fabric had a core to re-rate.
    pub fn set_core_rate(&mut self, rate: Bandwidth) -> bool {
        self.set_pipe_rate(PipeSel::Core, rate)
    }

    /// The selected pipe's *current* capacity, or `None` when the fabric
    /// has no such pipe (no core, or the NIC index is out of range).
    pub fn pipe_rate(&self, pipe: PipeSel) -> Option<Bandwidth> {
        self.pipe_at(pipe).map(SharedUplink::capacity)
    }

    /// Re-rates any pipe of the fabric mid-run — a source NIC, the core
    /// trunk, or a destination ingress NIC. Fault injection over the whole
    /// fabric rides this: every in-flight flow crossing the pipe sees the
    /// new rate at its next [`Topology::flow_rate`] re-grant, exactly like
    /// [`Topology::set_core_rate`] (which this generalizes). Returns
    /// whether the fabric had the selected pipe.
    pub fn set_pipe_rate(&mut self, pipe: PipeSel, rate: Bandwidth) -> bool {
        match self.pipe_at_mut(pipe) {
            Some(p) => {
                p.set_rate(rate);
                true
            }
            None => false,
        }
    }

    fn pipe_at(&self, pipe: PipeSel) -> Option<&SharedUplink> {
        match pipe {
            PipeSel::Egress(i) => self.egress.get(i),
            PipeSel::Core => self.core.as_ref(),
            PipeSel::Ingress(i) => self.ingress.get(i),
        }
    }

    fn pipe_at_mut(&mut self, pipe: PipeSel) -> Option<&mut SharedUplink> {
        match pipe {
            PipeSel::Egress(i) => self.egress.get_mut(i),
            PipeSel::Core => self.core.as_mut(),
            PipeSel::Ingress(i) => self.ingress.get_mut(i),
        }
    }

    /// The selected pipe's [`LinkSpec`] name, or `None` when the fabric
    /// has no such pipe. Fault narration uses this so a seeded degrade
    /// names the link it hit.
    pub fn pipe_name(&self, pipe: PipeSel) -> Option<&str> {
        match pipe {
            PipeSel::Egress(i) => self.egress_specs.get(i).map(|s| s.name.as_str()),
            PipeSel::Core => self.core_spec.as_ref().map(|s| s.name.as_str()),
            PipeSel::Ingress(i) => self.ingress_specs.get(i).map(|s| s.name.as_str()),
        }
    }

    /// Samples every pipe of the fabric into `out` (built by
    /// [`PipeTimelines::for_topology`]): utilization over the window
    /// `[at - dt, at)` from the rates currently granted to open flows
    /// (each flow's end-to-end rate is attributed to every hop it
    /// crosses), and the aggregate minimum-rate demand subscribed on the
    /// pipe. Pure arithmetic over existing state — sampling never
    /// perturbs shares, budgets or carries.
    pub fn sample_pipes(&mut self, at: SimTime, dt: SimDuration, out: &mut PipeTimelines) {
        let mut egress_bps = vec![0.0f64; self.egress.len()];
        let mut core_bps = 0.0f64;
        let mut ingress_bps = vec![0.0f64; self.ingress.len()];
        for i in 0..self.flows.len() {
            let Some((src, dst, crosses_core)) = self.flows[i]
                .as_ref()
                .map(|p| (p.src, p.dst, p.core_sub.is_some()))
            else {
                continue;
            };
            let rate = self.flow_rate(FlowId(i)).bytes_per_sec();
            egress_bps[src] += rate;
            if crosses_core {
                core_bps += rate;
            }
            if let Some(d) = dst {
                ingress_bps[d] += rate;
            }
        }
        let secs = dt.as_secs_f64();
        let mut k = 0;
        let mut push = |pipe: &mut SharedUplink, demand_bps: f64, out: &mut PipeTimelines| {
            let sent = (demand_bps * secs) as u64;
            let util = pipe.sample_utilization(at, dt, sent);
            let p = &mut out.pipes[k];
            p.utilization.push(at.as_nanos(), util);
            p.queued_demand.push(at.as_nanos(), pipe.queued_demand());
            p.last_capacity_bps = pipe.capacity().bytes_per_sec();
            k += 1;
        };
        for (i, pipe) in self.egress.iter_mut().enumerate() {
            push(pipe, egress_bps[i], out);
        }
        if let Some(core) = self.core.as_mut() {
            push(core, core_bps, out);
        }
        for (i, pipe) in self.ingress.iter_mut().enumerate() {
            push(pipe, ingress_bps[i], out);
        }
    }
}

/// One pipe's bounded observation rings, tagged by pipe name.
#[derive(Debug, Clone)]
pub struct PipeTimeline {
    /// The pipe's [`LinkSpec`] name (host name, core name, ...).
    pub name: String,
    /// Whether the pipe is a WAN link.
    pub wan: bool,
    /// Utilization samples in `[0, 1]`.
    pub utilization: SampleSeries,
    /// Aggregate subscribed minimum-rate demand, bytes/second.
    pub queued_demand: SampleSeries,
    /// The pipe's capacity at the most recent sample, bytes/second
    /// (0 until first sampled). Mid-run re-rates — a degraded core — show
    /// up here, which is what lets the saturation watchdog compare the
    /// subscribed demand against the capacity that *currently* holds.
    pub last_capacity_bps: f64,
}

/// Per-pipe utilization and queued-demand timelines for a whole fabric:
/// source NICs, the core switch (when present), then destination ingress
/// NICs, in [`Topology`] order. Fed by [`Topology::sample_pipes`];
/// consumed by the SLO watchdog, the Prometheus pipe families and the
/// evacuation digest.
#[derive(Debug, Clone)]
pub struct PipeTimelines {
    pipes: Vec<PipeTimeline>,
}

impl PipeTimelines {
    /// Builds empty rings for every pipe of `topo`. `capacity` bounds
    /// each ring; samples arrive on the evacuation's sampling cadence but
    /// are recorded as irregular series (wakeups, not a wall timer, drive
    /// sampling).
    pub fn for_topology(topo: &Topology, capacity: usize) -> Self {
        let mk = |spec: &LinkSpec| PipeTimeline {
            name: spec.name.clone(),
            wan: spec.wan,
            utilization: SampleSeries::new(0, capacity),
            queued_demand: SampleSeries::new(0, capacity),
            last_capacity_bps: 0.0,
        };
        let mut pipes: Vec<PipeTimeline> = topo.egress_specs.iter().map(mk).collect();
        if let Some(core) = topo.core_spec.as_ref() {
            pipes.push(mk(core));
        }
        pipes.extend(topo.ingress_specs.iter().map(mk));
        Self { pipes }
    }

    /// The per-pipe timelines, in topology order.
    pub fn pipes(&self) -> &[PipeTimeline] {
        &self.pipes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(x: f64) -> Bandwidth {
        Bandwidth::from_mbytes_per_sec(x)
    }

    #[test]
    fn degenerate_topology_is_the_shared_uplink_bit_for_bit() {
        // The identity the drain adapter depends on: a flow over the
        // single-uplink fabric rates exactly like a SharedUplink subscriber.
        let cap = Bandwidth::gigabit_ethernet();
        let mut topo = Topology::single_uplink(cap);
        let mut up = SharedUplink::new(cap);

        let fa = topo.open_flow(0, None, 1.0, mb(10.0));
        let sa = up.subscribe(1.0, mb(10.0));
        assert_eq!(
            topo.flow_rate(fa).bytes_per_sec(),
            up.share(sa).bytes_per_sec()
        );
        assert_eq!(
            topo.flow_rate(fa).bytes_per_sec(),
            cap.bytes_per_sec(),
            "sole flow sees undivided capacity, no float detour"
        );

        let fb = topo.open_flow(0, None, 3.0, mb(10.0));
        let sb = up.subscribe(3.0, mb(10.0));
        assert_eq!(
            topo.flow_rate(fa).bytes_per_sec(),
            up.share(sa).bytes_per_sec()
        );
        assert_eq!(
            topo.flow_rate(fb).bytes_per_sec(),
            up.share(sb).bytes_per_sec()
        );

        assert_eq!(
            topo.can_admit(0, None, 2.0, mb(300.0)),
            up.can_admit(2.0, mb(300.0))
        );
        assert!(!topo.path_idle(0, None));
        topo.close_flow(fa);
        topo.close_flow(fb);
        assert!(topo.path_idle(0, None));
    }

    #[test]
    fn bottleneck_hop_binds_flow_rate() {
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(125.0))],
            Some(LinkSpec::lan("core", mb(500.0))),
            vec![
                LinkSpec::lan("fast", mb(125.0)),
                LinkSpec::wan("slow", mb(40.0)),
            ],
        );
        let fast = topo.open_flow(0, Some(0), 1.0, mb(1.0));
        assert_eq!(
            topo.flow_rate(fast).bytes_per_sec(),
            mb(125.0).bytes_per_sec()
        );
        topo.close_flow(fast);
        let slow = topo.open_flow(0, Some(1), 1.0, mb(1.0));
        assert_eq!(
            topo.flow_rate(slow).bytes_per_sec(),
            mb(40.0).bytes_per_sec(),
            "WAN ingress is the bottleneck"
        );
    }

    #[test]
    fn core_contention_shares_across_hosts() {
        let mut topo = Topology::new(
            vec![
                LinkSpec::lan("src0", mb(125.0)),
                LinkSpec::lan("src1", mb(125.0)),
            ],
            Some(LinkSpec::lan("core", mb(150.0))),
            vec![LinkSpec::lan("dst", mb(1000.0))],
        );
        let a = topo.open_flow(0, Some(0), 1.0, mb(1.0));
        let b = topo.open_flow(1, Some(0), 2.0, mb(1.0));
        // Each host's NIC is otherwise idle; the 150 MB/s core splits 1:2.
        assert_eq!(topo.flow_rate(a).bytes_per_sec(), mb(50.0).bytes_per_sec());
        assert_eq!(topo.flow_rate(b).bytes_per_sec(), mb(100.0).bytes_per_sec());
        topo.close_flow(a);
        assert_eq!(
            topo.flow_rate(b).bytes_per_sec(),
            mb(125.0).bytes_per_sec(),
            "after the peer leaves, the NIC binds, not the core"
        );
    }

    #[test]
    fn admission_checks_every_hop() {
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(125.0))],
            None,
            vec![LinkSpec::wan("wan", mb(40.0))],
        );
        // Feasible on the NIC, infeasible on the WAN ingress.
        assert!(!topo.can_admit(0, Some(0), 1.0, mb(65.0)));
        assert!(topo.can_admit(0, Some(0), 1.0, mb(20.0)));
        let f = topo.open_flow(0, Some(0), 1.0, mb(20.0));
        assert!(!topo.path_idle(0, Some(0)));
        topo.close_flow(f);
        assert!(topo.path_idle(0, Some(0)));
    }

    #[test]
    fn predicted_rate_is_hypothetical_post_join_minimum() {
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(100.0))],
            None,
            vec![LinkSpec::lan("dst", mb(300.0))],
        );
        let _f = topo.open_flow(0, Some(0), 1.0, mb(1.0));
        // Joining with weight 1 against an incumbent of weight 1: half the
        // 100 MB/s NIC, a third of nothing on the roomy ingress.
        let r = topo.predicted_rate(0, Some(0), 1.0);
        assert_eq!(r.bytes_per_sec(), mb(50.0).bytes_per_sec());
    }

    #[test]
    fn pipe_timelines_sample_every_hop_in_topology_order() {
        let mut topo = Topology::new(
            vec![
                LinkSpec::lan("src0", mb(125.0)),
                LinkSpec::lan("src1", mb(125.0)),
            ],
            Some(LinkSpec::lan("core", mb(150.0))),
            vec![LinkSpec::wan("wan-dst", mb(40.0))],
        );
        let mut pipes = PipeTimelines::for_topology(&topo, 16);
        assert_eq!(
            pipes
                .pipes()
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>(),
            vec!["src0", "src1", "core", "wan-dst"],
        );
        assert!(pipes.pipes()[3].wan && !pipes.pipes()[2].wan);

        let _a = topo.open_flow(0, Some(0), 1.0, mb(10.0));
        let _b = topo.open_flow(1, Some(0), 1.0, mb(10.0));
        let at = SimTime::ZERO + SimDuration::from_millis(250);
        topo.sample_pipes(at, SimDuration::from_millis(250), &mut pipes);

        // Both flows bottleneck on the 40 MB/s WAN ingress (20 each):
        // the ingress is saturated, the NICs and core are not.
        let p = pipes.pipes();
        assert!((p[3].utilization.last().unwrap() - 1.0).abs() < 1e-9);
        assert!((p[0].utilization.last().unwrap() - 20.0 / 125.0).abs() < 1e-9);
        assert!((p[2].utilization.last().unwrap() - 40.0 / 150.0).abs() < 1e-9);
        // Queued demand is the subscribed min-rate floor per pipe.
        assert_eq!(p[0].queued_demand.last(), Some(10_000_000.0));
        assert_eq!(p[2].queued_demand.last(), Some(20_000_000.0));
        assert_eq!(p[3].queued_demand.last(), Some(20_000_000.0));
    }

    #[test]
    fn core_re_rate_degrades_in_flight_flows() {
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(125.0))],
            Some(LinkSpec::lan("core", mb(150.0))),
            vec![LinkSpec::lan("dst", mb(1000.0))],
        );
        let f = topo.open_flow(0, Some(0), 1.0, mb(1.0));
        assert_eq!(topo.flow_rate(f).bytes_per_sec(), mb(125.0).bytes_per_sec());
        assert!(topo.set_core_rate(mb(30.0)));
        assert_eq!(
            topo.core_rate().unwrap().bytes_per_sec(),
            mb(30.0).bytes_per_sec()
        );
        assert_eq!(
            topo.flow_rate(f).bytes_per_sec(),
            mb(30.0).bytes_per_sec(),
            "degraded core becomes the bottleneck at the next re-grant"
        );
        let mut coreless = Topology::single_uplink(mb(100.0));
        assert!(!coreless.set_core_rate(mb(1.0)));
    }

    #[test]
    fn flow_ids_are_never_reused() {
        let mut topo = Topology::single_uplink(mb(100.0));
        let a = topo.open_flow(0, None, 1.0, mb(1.0));
        topo.close_flow(a);
        let b = topo.open_flow(0, None, 1.0, mb(1.0));
        assert_ne!(a, b);
    }
}
