//! A multi-host migration fabric: per-host NICs, a contended core switch,
//! and destination NICs.
//!
//! A whole-rack evacuation pushes many hosts' migration traffic through
//! shared infrastructure at once. [`Topology`] models the three hops that
//! traffic crosses — the source host's egress NIC, an optional core
//! switch shared by *all* hosts, and the destination host's ingress NIC —
//! each as an independent [`SharedUplink`] with the same weighted-fair
//! arbitration a single-host drain uses. A migration is a [`FlowId`]:
//! opening it subscribes the flow to every hop on its path, and its
//! end-to-end rate is the minimum of its per-hop fair shares (the
//! bottleneck hop binds, exactly as max-min fairness would for a single
//! congested resource on the path).
//!
//! The degenerate topology — one source host, no core switch, no
//! destination NICs — is a single `SharedUplink` wearing a new name:
//! a flow's rate *is* its egress share, bit for bit, because the
//! minimum over one operand returns that operand unchanged. That identity
//! is what keeps the single-host drain digests byte-stable under the
//! evacuation-core redesign (see `cluster::evac`).
//!
//! Hops that are not part of the topology are *absent*, never "infinitely
//! fast": an absent core switch contributes no share to minimise over and
//! no subscription to arbitrate, so it cannot perturb the arithmetic of
//! the hops that do exist.

use crate::shared::{SharedUplink, SubscriberId};
use simkit::units::Bandwidth;

/// Describes one physical link of the fabric: a name for reporting, its
/// capacity, and whether it is a WAN path (slow, long-haul — placement
/// policies may treat WAN destinations as a last resort).
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Human-readable name, surfaced in bench output.
    pub name: String,
    /// Link capacity.
    pub bandwidth: Bandwidth,
    /// Whether the link crosses a WAN (descriptive; the rate model is the
    /// capacity itself).
    pub wan: bool,
}

impl LinkSpec {
    /// A LAN link with the given name and capacity.
    pub fn lan(name: impl Into<String>, bandwidth: Bandwidth) -> Self {
        Self {
            name: name.into(),
            bandwidth,
            wan: false,
        }
    }

    /// A WAN link with the given name and capacity.
    pub fn wan(name: impl Into<String>, bandwidth: Bandwidth) -> Self {
        Self {
            name: name.into(),
            bandwidth,
            wan: true,
        }
    }
}

/// Identifies one end-to-end migration flow across a [`Topology`].
///
/// Ids are never reused within one topology's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(usize);

#[derive(Debug, Clone)]
struct FlowPath {
    src: usize,
    dst: Option<usize>,
    egress_sub: SubscriberId,
    core_sub: Option<SubscriberId>,
    ingress_sub: Option<SubscriberId>,
}

/// The migration fabric: per-source egress NICs, an optional shared core
/// switch, and per-destination ingress NICs.
///
/// # Examples
///
/// ```
/// use netsim::topology::{LinkSpec, Topology};
/// use simkit::units::Bandwidth;
///
/// // Two source hosts drain through a contended core into one destination.
/// let mut topo = Topology::new(
///     vec![
///         LinkSpec::lan("src0", Bandwidth::from_mbytes_per_sec(125.0)),
///         LinkSpec::lan("src1", Bandwidth::from_mbytes_per_sec(125.0)),
///     ],
///     Some(LinkSpec::lan("core", Bandwidth::from_mbytes_per_sec(150.0))),
///     vec![LinkSpec::lan("dst0", Bandwidth::from_mbytes_per_sec(500.0))],
/// );
/// let min = Bandwidth::from_mbytes_per_sec(10.0);
/// let a = topo.open_flow(0, Some(0), 1.0, min);
/// let b = topo.open_flow(1, Some(0), 1.0, min);
/// // Each flow gets its full NIC egress but only half the core switch.
/// assert_eq!(topo.flow_rate(a).bytes_per_sec(), 75_000_000.0);
/// topo.close_flow(a);
/// assert_eq!(topo.flow_rate(b).bytes_per_sec(), 125_000_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    egress_specs: Vec<LinkSpec>,
    core_spec: Option<LinkSpec>,
    ingress_specs: Vec<LinkSpec>,
    egress: Vec<SharedUplink>,
    core: Option<SharedUplink>,
    ingress: Vec<SharedUplink>,
    flows: Vec<Option<FlowPath>>,
}

impl Topology {
    /// Builds a fabric from link specs: one egress NIC per source host, an
    /// optional core switch every flow crosses, and one ingress NIC per
    /// destination host.
    ///
    /// # Panics
    ///
    /// If `egress` is empty.
    pub fn new(egress: Vec<LinkSpec>, core: Option<LinkSpec>, ingress: Vec<LinkSpec>) -> Self {
        assert!(!egress.is_empty(), "topology needs at least one source NIC");
        let mk = |s: &LinkSpec| SharedUplink::new(s.bandwidth);
        Self {
            egress: egress.iter().map(mk).collect(),
            core: core.as_ref().map(mk),
            ingress: ingress.iter().map(mk).collect(),
            egress_specs: egress,
            core_spec: core,
            ingress_specs: ingress,
            flows: Vec::new(),
        }
    }

    /// The degenerate single-host fabric: one egress NIC, no core switch,
    /// no destination NICs. A flow's end-to-end rate over this topology is
    /// its egress fair share *exactly* — the identity the single-host
    /// drain adapter relies on for byte-stable digests.
    pub fn single_uplink(capacity: Bandwidth) -> Self {
        Self::new(vec![LinkSpec::lan("uplink", capacity)], None, Vec::new())
    }

    /// Number of source-host egress NICs.
    pub fn sources(&self) -> usize {
        self.egress.len()
    }

    /// Number of destination-host ingress NICs.
    pub fn destinations(&self) -> usize {
        self.ingress.len()
    }

    /// Spec of source host `src`'s egress NIC.
    pub fn egress_spec(&self, src: usize) -> &LinkSpec {
        &self.egress_specs[src]
    }

    /// Spec of destination host `dst`'s ingress NIC.
    pub fn ingress_spec(&self, dst: usize) -> &LinkSpec {
        &self.ingress_specs[dst]
    }

    /// Spec of the core switch, if the fabric has one.
    pub fn core_spec(&self) -> Option<&LinkSpec> {
        self.core_spec.as_ref()
    }

    /// In-flight flows leaving source host `src` (its egress subscriber
    /// count) — the per-host concurrency the admission loop throttles on.
    pub fn host_active(&self, src: usize) -> usize {
        self.egress[src].active()
    }

    /// Opens an end-to-end flow from source host `src` to destination
    /// `dst` (or to nowhere in particular on a destination-less fabric),
    /// subscribing it to every hop on its path with fair-share `weight`
    /// and declared minimum `min_rate`.
    ///
    /// # Panics
    ///
    /// If `src`/`dst` are out of range, or `dst` is `None` while the
    /// fabric has destination NICs (a placed evacuation must name one).
    pub fn open_flow(
        &mut self,
        src: usize,
        dst: Option<usize>,
        weight: f64,
        min_rate: Bandwidth,
    ) -> FlowId {
        assert!(
            dst.is_some() || self.ingress.is_empty(),
            "flows over a fabric with destination NICs must name a destination"
        );
        let egress_sub = self.egress[src].subscribe(weight, min_rate);
        let core_sub = self.core.as_mut().map(|c| c.subscribe(weight, min_rate));
        let ingress_sub = dst.map(|d| self.ingress[d].subscribe(weight, min_rate));
        let id = FlowId(self.flows.len());
        self.flows.push(Some(FlowPath {
            src,
            dst,
            egress_sub,
            core_sub,
            ingress_sub,
        }));
        id
    }

    /// Closes a flow (its migration finished or aborted), releasing its
    /// subscription on every hop. Closing an already-closed flow panics —
    /// that is a scheduler accounting bug, not a recoverable state.
    pub fn close_flow(&mut self, flow: FlowId) {
        let path = self.flows[flow.0]
            .take()
            .expect("close_flow() of an already-closed flow");
        self.egress[path.src].unsubscribe(path.egress_sub);
        if let (Some(core), Some(sub)) = (self.core.as_mut(), path.core_sub) {
            core.unsubscribe(sub);
        }
        if let (Some(d), Some(sub)) = (path.dst, path.ingress_sub) {
            self.ingress[d].unsubscribe(sub);
        }
    }

    /// The flow's end-to-end rate: the minimum of its fair shares on every
    /// hop along the path. The bottleneck hop's share is returned
    /// *unchanged* — in particular, over a single-hop path the result is
    /// the egress share bit for bit.
    ///
    /// # Panics
    ///
    /// If the flow is closed.
    pub fn flow_rate(&self, flow: FlowId) -> Bandwidth {
        let path = self.flows[flow.0]
            .as_ref()
            .expect("flow_rate() of a closed flow");
        let mut rate = self.egress[path.src].share(path.egress_sub);
        if let (Some(core), Some(sub)) = (self.core.as_ref(), path.core_sub) {
            let share = core.share(sub);
            if share.bytes_per_sec() < rate.bytes_per_sec() {
                rate = share;
            }
        }
        if let (Some(d), Some(sub)) = (path.dst, path.ingress_sub) {
            let share = self.ingress[d].share(sub);
            if share.bytes_per_sec() < rate.bytes_per_sec() {
                rate = share;
            }
        }
        rate
    }

    /// Whether a candidate flow `src → dst` with (`weight`, `min_rate`)
    /// can join without starving any subscriber on any hop of its path
    /// below its declared minimum ([`SharedUplink::can_admit`] per hop).
    pub fn can_admit(
        &self,
        src: usize,
        dst: Option<usize>,
        weight: f64,
        min_rate: Bandwidth,
    ) -> bool {
        if !self.egress[src].can_admit(weight, min_rate) {
            return false;
        }
        if let Some(core) = self.core.as_ref() {
            if !core.can_admit(weight, min_rate) {
                return false;
            }
        }
        if let Some(d) = dst {
            if !self.ingress[d].can_admit(weight, min_rate) {
                return false;
            }
        }
        true
    }

    /// Whether every hop on the path `src → dst` is idle. The admission
    /// loop's deadlock-avoidance clause: a VM whose minimum rate no share
    /// could ever satisfy is still admitted once its whole path is quiet,
    /// generalising the single-uplink `active() == 0` escape hatch.
    pub fn path_idle(&self, src: usize, dst: Option<usize>) -> bool {
        if self.egress[src].active() != 0 {
            return false;
        }
        if let Some(core) = self.core.as_ref() {
            if core.active() != 0 {
                return false;
            }
        }
        if let Some(d) = dst {
            if self.ingress[d].active() != 0 {
                return false;
            }
        }
        true
    }

    /// The rate a candidate flow would get if admitted now: the minimum
    /// over its path of each hop's hypothetical post-join share
    /// `capacity · w / (Σw + w)`. Placement policies use this to score
    /// destinations; it is an estimate of the *initial* rate only (shares
    /// re-balance as flows come and go).
    pub fn predicted_rate(&self, src: usize, dst: Option<usize>, weight: f64) -> Bandwidth {
        let post_join = |up: &SharedUplink| {
            let total = up.total_weight() + weight;
            up.capacity().bytes_per_sec() * (weight / total)
        };
        let mut rate = post_join(&self.egress[src]);
        if let Some(core) = self.core.as_ref() {
            rate = rate.min(post_join(core));
        }
        if let Some(d) = dst {
            rate = rate.min(post_join(&self.ingress[d]));
        }
        Bandwidth::from_bytes_per_sec(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(x: f64) -> Bandwidth {
        Bandwidth::from_mbytes_per_sec(x)
    }

    #[test]
    fn degenerate_topology_is_the_shared_uplink_bit_for_bit() {
        // The identity the drain adapter depends on: a flow over the
        // single-uplink fabric rates exactly like a SharedUplink subscriber.
        let cap = Bandwidth::gigabit_ethernet();
        let mut topo = Topology::single_uplink(cap);
        let mut up = SharedUplink::new(cap);

        let fa = topo.open_flow(0, None, 1.0, mb(10.0));
        let sa = up.subscribe(1.0, mb(10.0));
        assert_eq!(
            topo.flow_rate(fa).bytes_per_sec(),
            up.share(sa).bytes_per_sec()
        );
        assert_eq!(
            topo.flow_rate(fa).bytes_per_sec(),
            cap.bytes_per_sec(),
            "sole flow sees undivided capacity, no float detour"
        );

        let fb = topo.open_flow(0, None, 3.0, mb(10.0));
        let sb = up.subscribe(3.0, mb(10.0));
        assert_eq!(
            topo.flow_rate(fa).bytes_per_sec(),
            up.share(sa).bytes_per_sec()
        );
        assert_eq!(
            topo.flow_rate(fb).bytes_per_sec(),
            up.share(sb).bytes_per_sec()
        );

        assert_eq!(
            topo.can_admit(0, None, 2.0, mb(300.0)),
            up.can_admit(2.0, mb(300.0))
        );
        assert!(!topo.path_idle(0, None));
        topo.close_flow(fa);
        topo.close_flow(fb);
        assert!(topo.path_idle(0, None));
    }

    #[test]
    fn bottleneck_hop_binds_flow_rate() {
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(125.0))],
            Some(LinkSpec::lan("core", mb(500.0))),
            vec![
                LinkSpec::lan("fast", mb(125.0)),
                LinkSpec::wan("slow", mb(40.0)),
            ],
        );
        let fast = topo.open_flow(0, Some(0), 1.0, mb(1.0));
        assert_eq!(
            topo.flow_rate(fast).bytes_per_sec(),
            mb(125.0).bytes_per_sec()
        );
        topo.close_flow(fast);
        let slow = topo.open_flow(0, Some(1), 1.0, mb(1.0));
        assert_eq!(
            topo.flow_rate(slow).bytes_per_sec(),
            mb(40.0).bytes_per_sec(),
            "WAN ingress is the bottleneck"
        );
    }

    #[test]
    fn core_contention_shares_across_hosts() {
        let mut topo = Topology::new(
            vec![
                LinkSpec::lan("src0", mb(125.0)),
                LinkSpec::lan("src1", mb(125.0)),
            ],
            Some(LinkSpec::lan("core", mb(150.0))),
            vec![LinkSpec::lan("dst", mb(1000.0))],
        );
        let a = topo.open_flow(0, Some(0), 1.0, mb(1.0));
        let b = topo.open_flow(1, Some(0), 2.0, mb(1.0));
        // Each host's NIC is otherwise idle; the 150 MB/s core splits 1:2.
        assert_eq!(topo.flow_rate(a).bytes_per_sec(), mb(50.0).bytes_per_sec());
        assert_eq!(topo.flow_rate(b).bytes_per_sec(), mb(100.0).bytes_per_sec());
        topo.close_flow(a);
        assert_eq!(
            topo.flow_rate(b).bytes_per_sec(),
            mb(125.0).bytes_per_sec(),
            "after the peer leaves, the NIC binds, not the core"
        );
    }

    #[test]
    fn admission_checks_every_hop() {
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(125.0))],
            None,
            vec![LinkSpec::wan("wan", mb(40.0))],
        );
        // Feasible on the NIC, infeasible on the WAN ingress.
        assert!(!topo.can_admit(0, Some(0), 1.0, mb(65.0)));
        assert!(topo.can_admit(0, Some(0), 1.0, mb(20.0)));
        let f = topo.open_flow(0, Some(0), 1.0, mb(20.0));
        assert!(!topo.path_idle(0, Some(0)));
        topo.close_flow(f);
        assert!(topo.path_idle(0, Some(0)));
    }

    #[test]
    fn predicted_rate_is_hypothetical_post_join_minimum() {
        let mut topo = Topology::new(
            vec![LinkSpec::lan("src", mb(100.0))],
            None,
            vec![LinkSpec::lan("dst", mb(300.0))],
        );
        let _f = topo.open_flow(0, Some(0), 1.0, mb(1.0));
        // Joining with weight 1 against an incumbent of weight 1: half the
        // 100 MB/s NIC, a third of nothing on the roomy ingress.
        let r = topo.predicted_rate(0, Some(0), 1.0);
        assert_eq!(r.bytes_per_sec(), mb(50.0).bytes_per_sec());
    }

    #[test]
    fn flow_ids_are_never_reused() {
        let mut topo = Topology::single_uplink(mb(100.0));
        let a = topo.open_flow(0, None, 1.0, mb(1.0));
        topo.close_flow(a);
        let b = topo.open_flow(0, None, 1.0, mb(1.0));
        assert_ne!(a, b);
    }
}
