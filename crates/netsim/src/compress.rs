//! Page compression model for the §6 selective-compression extension.
//!
//! Compression trades CPU for network bandwidth. The paper proposes
//! compressing only the pages that were *not* skipped over, with a widened
//! transfer map choosing the method per page. We model two methods with
//! measured-shape characteristics: a fast LZ-class compressor and a slower,
//! stronger one.

use simkit::SimDuration;

/// A compression method for page contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// No compression.
    None,
    /// Fast LZ-class compression: cheap, moderate ratio.
    Fast,
    /// Stronger (deflate-class) compression: slower, better ratio.
    Strong,
}

impl Method {
    /// Compressed size of `bytes` whose intrinsic compressibility is
    /// `class_ratio` (the `vmem` page-class ratio, compressed/original
    /// under a strong compressor).
    ///
    /// The fast method realises only part of the achievable reduction.
    pub fn compressed_size(self, bytes: u64, class_ratio: f64) -> u64 {
        let ratio = match self {
            Method::None => 1.0,
            // A fast compressor leaves ~40% of the achievable reduction
            // on the table.
            Method::Fast => 1.0 - (1.0 - class_ratio) * 0.6,
            Method::Strong => class_ratio,
        };
        ((bytes as f64) * ratio.clamp(0.0, 1.0)).ceil() as u64
    }

    /// CPU time to compress `bytes` on the source host.
    pub fn cpu_cost(self, bytes: u64) -> SimDuration {
        let per_byte = match self {
            Method::None => 0.0,
            Method::Fast => 0.45e-9,
            Method::Strong => 2.4e-9,
        };
        SimDuration::from_secs_f64(bytes as f64 * per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity_and_free() {
        assert_eq!(Method::None.compressed_size(4096, 0.4), 4096);
        assert_eq!(Method::None.cpu_cost(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn strong_beats_fast_beats_none() {
        let strong = Method::Strong.compressed_size(4096, 0.4);
        let fast = Method::Fast.compressed_size(4096, 0.4);
        assert!(strong < fast);
        assert!(fast < 4096);
        assert!(Method::Strong.cpu_cost(4096) > Method::Fast.cpu_cost(4096));
    }

    #[test]
    fn incompressible_page_stays_put() {
        assert_eq!(Method::Strong.compressed_size(4096, 1.0), 4096);
        assert_eq!(Method::Fast.compressed_size(4096, 1.0), 4096);
    }
}
