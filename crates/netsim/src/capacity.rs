//! The common bandwidth-accounting contract of every rate-limited pipe.
//!
//! Two kinds of pipe carry migration traffic: a dedicated [`Link`] (one
//! engine, one rate) and a [`SharedUplink`] (one physical NIC arbitrated
//! across concurrent migrations). Both meter bytes the same way — a rate,
//! a per-quantum byte budget with sub-byte carry, and cumulative traffic
//! accounting — but historically each implemented it privately, and every
//! consumer had to know which one it held. [`Capacity`] is the shared
//! contract: the engine's transfer loops, the checkpoint writer and the
//! post-copy fetcher all meter through it, so they no longer special-case
//! the pipe they ride.
//!
//! The budget arithmetic is deliberately centralised in [`carry_budget`]:
//! a byte budget is `rate · dt + carry` truncated to whole bytes, with the
//! fraction carried to the next quantum. The *operation order* of that
//! expression is load-bearing — digests are byte-deterministic because
//! every pipe computes it identically — so both implementations call the
//! one helper instead of re-deriving it.

use crate::link::Link;
use crate::shared::SharedUplink;
use simkit::units::Bandwidth;
use simkit::{SimDuration, SimTime};

/// One quantum's whole-byte budget at `rate`, with sub-byte residue
/// carried in `carry` so long runs never systematically under-use a pipe.
///
/// Exactly `rate · dt + carry`, truncated; the fractional remainder is
/// written back. Every [`Capacity`] implementation must meter through
/// this helper — the f64 operation order decides digest bytes.
pub fn carry_budget(rate: Bandwidth, dt: SimDuration, carry: &mut f64) -> u64 {
    let exact = rate.bytes_per_sec() * dt.as_secs_f64() + *carry;
    let whole = exact as u64;
    *carry = exact - whole as f64;
    whole
}

/// The fraction of `rate · dt` consumed by `sent` bytes, clamped to
/// `[0, 1]` (0 when the window carries no capacity). The one utilization
/// formula every [`Capacity`] implementation reports through, so pipe
/// timelines are comparable across pipe kinds.
pub fn utilization_fraction(rate: Bandwidth, dt: SimDuration, sent: u64) -> f64 {
    let capacity = rate.bytes_per_sec() * dt.as_secs_f64();
    if capacity > 0.0 {
        (sent as f64 / capacity).min(1.0)
    } else {
        0.0
    }
}

/// A rate-limited pipe that meters migration bytes.
///
/// Implemented by [`Link`] (a dedicated point-to-point pipe) and
/// [`SharedUplink`] (aggregate accounting over the whole shared NIC).
/// Consumers that only *meter* — ask for budgets, account sends, convert
/// bytes to time — take `&mut impl Capacity` and work with either.
pub trait Capacity {
    /// The pipe's current rate.
    fn rate(&self) -> Bandwidth;

    /// Re-rates the pipe mid-run (fault injection, fair-share re-rating).
    fn set_rate(&mut self, rate: Bandwidth);

    /// Whole bytes that may be sent during `dt` (sub-byte residue carries
    /// to the next call).
    fn budget(&mut self, dt: SimDuration) -> u64;

    /// Accounts `bytes` as sent.
    fn record_send(&mut self, bytes: u64);

    /// Total bytes sent over the pipe's lifetime.
    fn bytes_sent(&self) -> u64;

    /// Time the pipe needs to drain `bytes` at its current rate.
    fn time_to_send(&self, bytes: u64) -> SimDuration {
        self.rate().time_to_send(bytes)
    }

    /// Accounts the utilization of the quantum `[at, at + dt)` during
    /// which `sent` bytes went out, returning the fraction of the pipe's
    /// capacity consumed (clamped to `[0, 1]`).
    ///
    /// Lifted from the [`Link`] utilization gauge so every pipe of a
    /// [`Topology`](crate::topology::Topology) — source NICs, the
    /// contended core, destination ingress, WAN — reports through one
    /// formula. The default is stateless; [`Link`] additionally feeds its
    /// windowed telemetry gauge.
    fn sample_utilization(&mut self, at: SimTime, dt: SimDuration, sent: u64) -> f64 {
        let _ = at;
        utilization_fraction(self.rate(), dt, sent)
    }
}

impl Capacity for Link {
    fn rate(&self) -> Bandwidth {
        self.bandwidth()
    }

    fn set_rate(&mut self, rate: Bandwidth) {
        self.set_bandwidth(rate);
    }

    fn budget(&mut self, dt: SimDuration) -> u64 {
        Link::budget(self, dt)
    }

    fn record_send(&mut self, bytes: u64) {
        Link::record_send(self, bytes);
    }

    fn bytes_sent(&self) -> u64 {
        Link::bytes_sent(self)
    }

    fn time_to_send(&self, bytes: u64) -> SimDuration {
        Link::time_to_send(self, bytes)
    }

    fn sample_utilization(&mut self, at: SimTime, dt: SimDuration, sent: u64) -> f64 {
        Link::sample_utilization(self, at, dt, sent);
        utilization_fraction(self.bandwidth(), dt, sent)
    }
}

/// Aggregate accounting over the whole shared pipe: the rate is the
/// uplink's total capacity and budgets drain it undivided. Per-subscriber
/// arbitration ([`SharedUplink::share`], [`SharedUplink::split_budget`])
/// sits on top and is untouched by this view.
impl Capacity for SharedUplink {
    fn rate(&self) -> Bandwidth {
        self.capacity()
    }

    fn set_rate(&mut self, rate: Bandwidth) {
        self.set_capacity(rate);
    }

    fn budget(&mut self, dt: SimDuration) -> u64 {
        self.aggregate_budget(dt)
    }

    fn record_send(&mut self, bytes: u64) {
        self.record_aggregate_send(bytes);
    }

    fn bytes_sent(&self) -> u64 {
        self.aggregate_bytes_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter<C: Capacity>(pipe: &mut C, quanta: u32, dt: SimDuration) -> u64 {
        let mut sent = 0;
        for _ in 0..quanta {
            let b = pipe.budget(dt);
            pipe.record_send(b);
            sent += b;
        }
        assert_eq!(pipe.bytes_sent(), sent);
        sent
    }

    #[test]
    fn link_and_uplink_meter_identically_through_the_trait() {
        // Same rate, same quanta: a dedicated link and a sole-tenant shared
        // uplink must hand out byte-for-byte identical budgets.
        let rate = Bandwidth::from_bytes_per_sec(333.0);
        let dt = SimDuration::from_millis(700);
        let link_total = meter(&mut Link::new(rate), 13, dt);
        let uplink_total = meter(&mut SharedUplink::new(rate), 13, dt);
        assert_eq!(link_total, uplink_total);
    }

    #[test]
    fn carry_budget_conserves_bytes() {
        let rate = Bandwidth::from_bytes_per_sec(3.0);
        let mut carry = 0.0;
        let total: u64 = (0..10)
            .map(|_| carry_budget(rate, SimDuration::from_millis(500), &mut carry))
            .sum();
        assert_eq!(total, 15, "5 s at 3 B/s");
    }

    #[test]
    fn trait_time_to_send_matches_rate() {
        let link = Link::new(Bandwidth::from_bytes_per_sec(100.0));
        let via_trait = Capacity::time_to_send(&link, 250);
        assert_eq!(via_trait, SimDuration::from_millis(2500));
    }

    #[test]
    fn sample_utilization_is_uniform_across_pipe_kinds() {
        // 1000 B/s over 1 s with 250 bytes sent: a quarter utilized, the
        // same answer from a dedicated link and a shared uplink.
        let rate = Bandwidth::from_bytes_per_sec(1000.0);
        let dt = SimDuration::from_secs(1);
        let mut link = Link::new(rate);
        let mut up = SharedUplink::new(rate);
        assert_eq!(
            Capacity::sample_utilization(&mut link, SimTime::ZERO, dt, 250),
            0.25
        );
        assert_eq!(
            Capacity::sample_utilization(&mut up, SimTime::ZERO, dt, 250),
            0.25
        );
        // Oversubscribed windows clamp; empty windows report idle.
        assert_eq!(
            Capacity::sample_utilization(&mut up, SimTime::ZERO, dt, 9_999),
            1.0
        );
        assert_eq!(
            Capacity::sample_utilization(&mut up, SimTime::ZERO, SimDuration::ZERO, 10),
            0.0
        );
    }
}
