#![warn(missing_docs)]
//! `netsim` — the migration network substrate.
//!
//! The network is the forcing function of the whole paper: when VM memory
//! dirties faster than the link can carry it, pre-copy cannot converge.
//! [`link::Link`] models the paper's gigabit Ethernet testbed as a
//! rate-limited pipe with deterministic byte budgeting; [`compress`] models
//! the per-page compression methods of the §6 extension; [`shared`] models
//! one physical uplink arbitrated across many concurrent migrations for
//! whole-host drains. [`capacity::Capacity`] is the accounting contract
//! both pipes share, and [`topology`] composes them into a multi-host
//! fabric — per-host NICs feeding a contended core switch feeding
//! destination NICs — for cluster-wide evacuations.

pub mod capacity;
pub mod compress;
pub mod link;
pub mod shared;
pub mod topology;

pub use capacity::{carry_budget, utilization_fraction, Capacity};
pub use compress::Method as CompressionMethod;
pub use link::{achieved_rate, Link, PAGE_HEADER_BYTES};
pub use shared::{SharedUplink, SubscriberId};
pub use topology::{FlowId, LinkSpec, PipeSel, PipeTimeline, PipeTimelines, Topology};
