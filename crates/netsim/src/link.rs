//! The migration network link.
//!
//! Models the paper's testbed link — gigabit Ethernet between two blades —
//! as a rate-limited pipe with a small per-batch latency. The co-simulation
//! driver asks the link for a byte budget each quantum and accounts what it
//! actually sent; the link tracks cumulative traffic and busy time, from
//! which migration reports compute per-iteration transfer rates.

use simkit::units::Bandwidth;
use simkit::{Recorder, SimDuration, SimTime, Subsystem};

/// Width of the utilization-gauge averaging window.
const UTIL_WINDOW: SimDuration = SimDuration::from_millis(100);

/// Per-page wire overhead: PFN metadata in the migration stream.
pub const PAGE_HEADER_BYTES: u64 = 8;

/// A point-to-point migration link.
///
/// # Examples
///
/// ```
/// use netsim::link::Link;
/// use simkit::units::Bandwidth;
/// use simkit::SimDuration;
///
/// let mut link = Link::new(Bandwidth::from_mbytes_per_sec(100.0));
/// let budget = link.budget(SimDuration::from_millis(10));
/// assert_eq!(budget, 1_000_000);
/// link.record_send(budget);
/// assert_eq!(link.bytes_sent(), 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth: Bandwidth,
    /// The construction-time bandwidth, restored by [`Link::reset`] so a
    /// reset link is indistinguishable from a freshly constructed one even
    /// after mid-run [`Link::set_bandwidth`] calls.
    base_bandwidth: Bandwidth,
    bytes_sent: u64,
    carry: f64,
    telemetry: Recorder,
    window_start: Option<SimTime>,
    window_sent: u64,
}

impl Link {
    /// Creates a link with the given application-level bandwidth.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Self {
            bandwidth,
            base_bandwidth: bandwidth,
            bytes_sent: 0,
            carry: 0.0,
            telemetry: Recorder::disabled(),
            window_start: None,
            window_sent: 0,
        }
    }

    /// Attaches a telemetry recorder: sampled quanta feed a `net`
    /// utilization gauge (averaged over 100 ms windows) and a cumulative
    /// `wire_bytes` counter.
    pub fn attach_telemetry(&mut self, recorder: Recorder) {
        self.telemetry = recorder;
    }

    /// Accounts the utilization of the quantum `[at, at + dt)` during which
    /// `sent` bytes went out. Call once per driver quantum while the link
    /// is in use; gauge samples are emitted once per 100 ms window.
    pub fn sample_utilization(&mut self, at: SimTime, dt: SimDuration, sent: u64) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter_add(Subsystem::Net, "wire_bytes", sent);
        let start = *self.window_start.get_or_insert(at);
        self.window_sent += sent;
        let end = at + dt;
        let elapsed = end.saturating_since(start);
        if elapsed >= UTIL_WINDOW {
            let capacity = self.bandwidth.bytes_per_sec() * elapsed.as_secs_f64();
            let util = if capacity > 0.0 {
                (self.window_sent as f64 / capacity).min(1.0)
            } else {
                0.0
            };
            self.telemetry
                .gauge(end, Subsystem::Net, "utilization", util);
            self.window_start = Some(end);
            self.window_sent = 0;
        }
    }

    /// The paper's testbed link.
    pub fn gigabit() -> Self {
        Self::new(Bandwidth::gigabit_ethernet())
    }

    /// Returns the link bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Changes the link bandwidth mid-run (e.g. fault injection degrading
    /// the migration network). Takes effect from the next [`Link::budget`]
    /// call; accumulated traffic counters are untouched.
    pub fn set_bandwidth(&mut self, bandwidth: Bandwidth) {
        self.bandwidth = bandwidth;
    }

    /// Returns how many bytes may be sent during `dt`.
    ///
    /// Sub-byte residue carries over to the next call so long runs do not
    /// systematically under-use the link.
    pub fn budget(&mut self, dt: SimDuration) -> u64 {
        crate::capacity::carry_budget(self.bandwidth, dt, &mut self.carry)
    }

    /// Accounts `bytes` as sent.
    pub fn record_send(&mut self, bytes: u64) {
        self.bytes_sent += bytes;
    }

    /// Total bytes sent over the link's lifetime.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Time the link needs to drain `bytes`.
    pub fn time_to_send(&self, bytes: u64) -> SimDuration {
        self.bandwidth.time_to_send(bytes)
    }

    /// Resets the link to its freshly constructed state (e.g. between
    /// migrations): traffic counter, budget carry, utilization-window
    /// sampling state, and any mid-run [`Link::set_bandwidth`] override are
    /// all cleared — afterwards the link is indistinguishable from
    /// `Link::new(bandwidth)` with the construction-time bandwidth.
    pub fn reset(&mut self) {
        self.bandwidth = self.base_bandwidth;
        self.bytes_sent = 0;
        self.carry = 0.0;
        self.window_start = None;
        self.window_sent = 0;
    }
}

/// A windowless transfer-rate observation helper: given bytes sent between
/// two instants, the achieved rate in bytes/second.
pub fn achieved_rate(bytes: u64, from: SimTime, to: SimTime) -> f64 {
    let secs = to.saturating_since(from).as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        bytes as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_carries_residue() {
        // 3 bytes/s at 0.5 s per call: budgets alternate 1, 2, 1, 2...
        let mut link = Link::new(Bandwidth::from_bytes_per_sec(3.0));
        let mut total = 0;
        for _ in 0..10 {
            total += link.budget(SimDuration::from_millis(500));
        }
        assert_eq!(total, 15, "5 s at 3 B/s");
    }

    #[test]
    fn gigabit_budget_per_ms() {
        let mut link = Link::gigabit();
        let b = link.budget(SimDuration::from_millis(1));
        // ~117.5 KB per millisecond.
        assert!((117_000..118_000).contains(&b), "budget {b}");
    }

    #[test]
    fn send_accounting_and_reset() {
        let mut link = Link::gigabit();
        link.record_send(500);
        link.record_send(1500);
        assert_eq!(link.bytes_sent(), 2000);
        link.reset();
        assert_eq!(link.bytes_sent(), 0);
    }

    #[test]
    fn reset_is_indistinguishable_from_fresh() {
        // Dirty every piece of mutable state a run can touch: accumulate a
        // fractional budget carry, traffic, utilization-window progress, and
        // a mid-run bandwidth override.
        let rate = Bandwidth::from_bytes_per_sec(3.0);
        let mut used = Link::new(rate);
        used.budget(SimDuration::from_millis(500)); // leaves carry = 0.5
        used.record_send(1);
        used.sample_utilization(SimTime::ZERO, SimDuration::from_millis(500), 1);
        used.set_bandwidth(Bandwidth::from_bytes_per_sec(1000.0));
        used.reset();

        let mut fresh = Link::new(rate);
        assert_eq!(used.bandwidth().bytes_per_sec(), rate.bytes_per_sec());
        assert_eq!(used.bytes_sent(), fresh.bytes_sent());
        // Identical budget sequences prove the carry (and bandwidth) match.
        for _ in 0..7 {
            let dt = SimDuration::from_millis(500);
            assert_eq!(used.budget(dt), fresh.budget(dt));
        }
    }

    #[test]
    fn achieved_rate_computes() {
        let from = SimTime::ZERO;
        let to = SimTime::from_nanos(2_000_000_000);
        assert_eq!(achieved_rate(200, from, to), 100.0);
        assert_eq!(achieved_rate(200, to, from), 0.0, "inverted interval");
    }
}
