//! Property-based tests for the link and compression models.

use netsim::link::Link;
use netsim::CompressionMethod;
use proptest::prelude::*;
use simkit::units::Bandwidth;
use simkit::SimDuration;

proptest! {
    /// Budgeting in arbitrary quanta never drifts from the exact rate by
    /// more than one byte, thanks to the fractional carry.
    #[test]
    fn link_budget_is_exact_over_time(
        mbps in 1u64..2000,
        quanta_ms in prop::collection::vec(1u64..50, 1..200),
    ) {
        let mut link = Link::new(Bandwidth::from_mbytes_per_sec(mbps as f64));
        let mut total = 0u64;
        let mut elapsed_ms = 0u64;
        for ms in quanta_ms {
            total += link.budget(SimDuration::from_millis(ms));
            elapsed_ms += ms;
        }
        let exact = mbps as f64 * 1e6 * elapsed_ms as f64 / 1e3;
        prop_assert!(
            (total as f64 - exact).abs() <= 1.0,
            "budgeted {total} vs exact {exact}"
        );
    }

    /// time_to_send is the inverse of budget at every rate.
    #[test]
    fn send_time_inverts_budget(mbps in 1u64..2000, bytes in 1u64..(1 << 30)) {
        let link = Link::new(Bandwidth::from_mbytes_per_sec(mbps as f64));
        let t = link.time_to_send(bytes);
        let back = Bandwidth::from_mbytes_per_sec(mbps as f64).bytes_in(t);
        let diff = back.abs_diff(bytes);
        prop_assert!(diff <= 2, "{bytes} -> {t} -> {back}");
    }

    /// Compression never inflates, stronger never loses to faster, and CPU
    /// cost is monotone in strength.
    #[test]
    fn compression_is_monotone(bytes in 1u64..(1 << 22), ratio in 0.0f64..1.0) {
        let none = CompressionMethod::None.compressed_size(bytes, ratio);
        let fast = CompressionMethod::Fast.compressed_size(bytes, ratio);
        let strong = CompressionMethod::Strong.compressed_size(bytes, ratio);
        prop_assert_eq!(none, bytes);
        prop_assert!(fast <= bytes + 1);
        prop_assert!(strong <= fast);
        prop_assert!(strong >= (bytes as f64 * ratio) as u64);
        prop_assert!(
            CompressionMethod::Strong.cpu_cost(bytes)
                >= CompressionMethod::Fast.cpu_cost(bytes)
        );
    }
}
