//! End-to-end engine tests against a synthetic guest (no JVM involved):
//! convergence, non-convergence, assistance, compression, determinism.

use guestos::coord::CoordPayload;
use guestos::kernel::{GuestKernel, GuestOsConfig};
use guestos::lkm::{DaemonPort, LkmConfig};
use guestos::netlink::NetlinkSocket;
use guestos::process::Pid;
use migrate::config::{CompressionPolicy, MigrationConfig};
use migrate::precopy::PrecopyEngine;
use migrate::vmhost::MigratableVm;
use netsim::CompressionMethod;
use simkit::units::{Bandwidth, MIB};
use simkit::{DetRng, SimClock, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, VmSpec, PAGE_SIZE};

/// A guest with one app that cyclically rewrites a hot buffer.
struct SyntheticVm {
    kernel: GuestKernel,
    port: Option<DaemonPort>,
    sock: Option<NetlinkSocket>,
    pid: Pid,
    hot: VaRange,
    /// Bytes of the hot buffer rewritten per second.
    dirty_rate: f64,
    cursor: u64,
    carry: f64,
    ops: u64,
    /// Pages at the start of the hot buffer reported as must-send.
    live_pages: u64,
    prep_requested: bool,
}

impl SyntheticVm {
    fn new(mem: u64, hot_bytes: u64, dirty_rate: f64, assisted: bool) -> Self {
        let mut kernel = GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(mem, 2),
                kernel_bytes: 8 * MIB,
                pagecache_bytes: 8 * MIB,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(11),
        );
        let pid = kernel.spawn("synthetic");
        let hot = kernel
            .alloc_map(
                pid,
                Vaddr(0x10_0000_0000),
                hot_bytes / PAGE_SIZE,
                PageClass::Anon,
            )
            .expect("hot buffer fits");
        // Write the hot buffer once so it has real content.
        kernel.write_range(pid, hot, PageClass::Anon);
        let (port, sock) = if assisted {
            let port = kernel.load_lkm(LkmConfig::default());
            let sock = kernel.subscribe_netlink(pid);
            (Some(port), Some(sock))
        } else {
            (None, None)
        };
        Self {
            kernel,
            port,
            sock,
            pid,
            hot,
            dirty_rate,
            cursor: 0,
            carry: 0.0,
            ops: 0,
            live_pages: 8,
            prep_requested: false,
        }
    }

    fn handle_messages(&mut self, now: SimTime) {
        let Some(sock) = &self.sock else { return };
        for msg in sock.recv(now) {
            match msg.payload {
                CoordPayload::QuerySkipOver => {
                    sock.send(now, CoordPayload::SkipOverAreas(vec![self.hot]));
                }
                CoordPayload::PrepareSuspension => {
                    self.prep_requested = true;
                }
                _ => {}
            }
        }
        if self.prep_requested {
            self.prep_requested = false;
            // "Prepare" instantly: report the first pages as live.
            let must = VaRange::new(
                self.hot.start(),
                Vaddr(self.hot.start().0 + self.live_pages * PAGE_SIZE),
            );
            // Re-dirty the live pages (like a GC compacting into them).
            self.kernel.write_range(self.pid, must, PageClass::Anon);
            sock.send(
                now,
                CoordPayload::SuspensionReady {
                    areas: vec![self.hot],
                    must_send: vec![must],
                },
            );
        }
    }
}

impl MigratableVm for SyntheticVm {
    fn kernel(&self) -> &GuestKernel {
        &self.kernel
    }

    fn kernel_mut(&mut self) -> &mut GuestKernel {
        &mut self.kernel
    }

    fn advance_guest(&mut self, now: SimTime, dt: SimDuration) {
        self.kernel.service_lkm(now);
        self.handle_messages(now);
        // Rewrite the hot buffer cyclically.
        let bytes = self.dirty_rate * dt.as_secs_f64() + self.carry;
        let pages = (bytes / PAGE_SIZE as f64) as u64;
        self.carry = bytes - (pages * PAGE_SIZE) as f64;
        let hot_pages = self.hot.page_count();
        for _ in 0..pages {
            let va = Vaddr(self.hot.start().0 + (self.cursor % hot_pages) * PAGE_SIZE);
            self.kernel
                .write_range(self.pid, VaRange::from_len(va, 1), PageClass::Anon);
            self.cursor += 1;
        }
        self.ops += 1;
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }

    fn daemon_port(&self) -> Option<DaemonPort> {
        self.port.clone()
    }

    fn enforced_gc_duration(&self) -> Option<SimDuration> {
        None
    }
}

fn fast_config(assisted: bool) -> MigrationConfig {
    let mut c = if assisted {
        MigrationConfig::javmm_default()
    } else {
        MigrationConfig::xen_default()
    };
    // A 20 MB/s link keeps these tests quick.
    c.bandwidth = Bandwidth::from_mbytes_per_sec(20.0);
    c
}

#[test]
fn idle_vm_converges_quickly_and_correctly() {
    let mut vm = SyntheticVm::new(128 * MIB, 16 * MIB, 0.0, false);
    let mut clock = SimClock::new();
    let report = PrecopyEngine::new(fast_config(false))
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");

    assert!(
        report.verification.is_correct(),
        "{:?}",
        report.verification
    );
    assert!(
        report.iteration_count() <= 3,
        "idle VM should converge, took {} iterations",
        report.iteration_count()
    );
    // Roughly one VM's worth of traffic.
    let ram = 128 * MIB;
    assert!(report.total_bytes >= ram, "sends all pages");
    assert!(report.total_bytes < ram + ram / 8);
    // Sub-second downtime: almost nothing left for the last iteration.
    assert!(
        report.downtime.workload_downtime() < SimDuration::from_millis(500),
        "downtime {}",
        report.downtime.workload_downtime()
    );
}

#[test]
fn hot_vm_is_forced_to_stop_and_pays_downtime() {
    // 40 MB/s of dirtying over a 20 MB/s link: cannot converge.
    let mut vm = SyntheticVm::new(128 * MIB, 32 * MIB, 40e6, false);
    let mut clock = SimClock::new();
    let report = PrecopyEngine::new(fast_config(false))
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");

    assert!(
        report.verification.is_correct(),
        "{:?}",
        report.verification
    );
    let last = report.last_iteration();
    assert!(
        last.pages_sent * PAGE_SIZE > 16 * MIB,
        "a large dirty residue must be sent while paused, got {}",
        last.pages_sent * PAGE_SIZE
    );
    assert!(
        report.downtime.vm_downtime() > SimDuration::from_millis(800),
        "downtime {}",
        report.downtime.vm_downtime()
    );
    // Traffic blows past the VM size.
    assert!(report.total_bytes > 2 * 128 * MIB);
}

#[test]
fn assistance_skips_the_hot_region() {
    let run = |assisted: bool| {
        let mut vm = SyntheticVm::new(128 * MIB, 32 * MIB, 40e6, assisted);
        let mut clock = SimClock::new();
        let report = PrecopyEngine::new(fast_config(assisted))
            .migrate(&mut vm, &mut clock)
            .expect("migration failed");
        assert!(
            report.verification.is_correct(),
            "{:?}",
            report.verification
        );
        report
    };
    let xen = run(false);
    let assisted = run(true);

    assert!(
        assisted.total_bytes < xen.total_bytes / 2,
        "assisted {} vs xen {}",
        assisted.total_bytes,
        xen.total_bytes
    );
    assert!(
        assisted.total_duration < xen.total_duration,
        "assisted {} vs xen {}",
        assisted.total_duration,
        xen.total_duration
    );
    assert!(
        assisted.downtime.vm_downtime() < xen.downtime.vm_downtime() / 4,
        "assisted {} vs xen {}",
        assisted.downtime.vm_downtime(),
        xen.downtime.vm_downtime()
    );
    assert!(assisted.pages_skipped_transfer() > 0);
    // The skipped hot pages are excused, the live pages were transferred.
    assert!(assisted.verification.excused_skipped > 0);
    assert_eq!(xen.pages_skipped_transfer(), 0);
}

#[test]
fn must_send_pages_arrive_despite_skipping() {
    let mut vm = SyntheticVm::new(128 * MIB, 32 * MIB, 40e6, true);
    let live_pages = vm.live_pages;
    let hot_start = vm.hot.start();
    let pid = vm.pid;
    let mut clock = SimClock::new();
    let report = PrecopyEngine::new(fast_config(true))
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");
    assert!(report.verification.is_correct());

    // Check the "live" pages explicitly: destination guarantees hold via
    // verification, but also confirm the last iteration carried data.
    let last = report.last_iteration();
    assert!(
        last.pages_sent >= live_pages,
        "last iteration must carry at least the live pages, sent {}",
        last.pages_sent
    );
    let pfn = vm.kernel().translate(pid, hot_start).unwrap();
    assert!(
        vm.kernel().lkm().unwrap().should_transfer(pfn),
        "live page's transfer bit must be set at pause"
    );
}

#[test]
fn compression_cuts_traffic_not_correctness() {
    let run = |policy: CompressionPolicy| {
        let mut vm = SyntheticVm::new(128 * MIB, 16 * MIB, 10e6, false);
        let mut clock = SimClock::new();
        let mut config = fast_config(false);
        config.compression = policy;
        let report = PrecopyEngine::new(config)
            .migrate(&mut vm, &mut clock)
            .expect("migration failed");
        assert!(report.verification.is_correct());
        report
    };
    let raw = run(CompressionPolicy::Off);
    let fast = run(CompressionPolicy::Uniform(CompressionMethod::Fast));
    let strong = run(CompressionPolicy::Uniform(CompressionMethod::Strong));
    let per_class = run(CompressionPolicy::PerClass);

    assert!(fast.total_bytes < raw.total_bytes);
    assert!(strong.total_bytes < fast.total_bytes);
    assert!(per_class.total_bytes < raw.total_bytes);
    assert!(
        strong.cpu_time > raw.cpu_time,
        "compression costs CPU: {} vs {}",
        strong.cpu_time,
        raw.cpu_time
    );
}

#[test]
fn migration_is_deterministic() {
    let run = || {
        let mut vm = SyntheticVm::new(128 * MIB, 32 * MIB, 40e6, true);
        let mut clock = SimClock::new();
        PrecopyEngine::new(fast_config(true))
            .migrate(&mut vm, &mut clock)
            .expect("migration failed")
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.total_duration, b.total_duration);
    assert_eq!(a.iteration_count(), b.iteration_count());
    assert_eq!(
        a.downtime.workload_downtime(),
        b.downtime.workload_downtime()
    );
    for (x, y) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(x.pages_sent, y.pages_sent);
        assert_eq!(x.duration, y.duration);
    }
}

#[test]
fn timeline_reflects_protocol_causality() {
    use migrate::report::{EngineEvent, StopReason};

    let mut vm = SyntheticVm::new(128 * MIB, 32 * MIB, 40e6, true);
    let mut clock = SimClock::new();
    let report = PrecopyEngine::new(fast_config(true))
        .migrate(&mut vm, &mut clock)
        .expect("migration failed");

    let events: Vec<&EngineEvent> = report.timeline.iter().map(|(_, e)| e).collect();
    // Ordering invariants of Figure 4.
    let pos = |needle: &EngineEvent| {
        events
            .iter()
            .position(|e| *e == needle)
            .unwrap_or_else(|| panic!("missing {needle:?} in {events:?}"))
    };
    assert_eq!(pos(&EngineEvent::Begin), 0);
    let stop = events
        .iter()
        .position(|e| matches!(e, EngineEvent::StopCondition(_)))
        .expect("stop condition fired");
    assert!(stop < pos(&EngineEvent::NotifiedLkm));
    assert!(pos(&EngineEvent::NotifiedLkm) < pos(&EngineEvent::ReadyReceived));
    assert!(pos(&EngineEvent::ReadyReceived) < pos(&EngineEvent::Paused));
    assert!(pos(&EngineEvent::Paused) < pos(&EngineEvent::Resumed));
    // Timestamps are monotone.
    let times: Vec<_> = report.timeline.iter().map(|&(t, _)| t).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
    // The hot skipped guest converges once the bitmap hides its dirtying.
    assert_eq!(report.stop_reason, StopReason::DirtyThreshold);
}

#[test]
fn stop_reasons_distinguish_workload_shapes() {
    use migrate::report::StopReason;

    // Idle guest: convergence.
    let mut idle = SyntheticVm::new(128 * MIB, 16 * MIB, 0.0, false);
    let mut clock = SimClock::new();
    let r = PrecopyEngine::new(fast_config(false))
        .migrate(&mut idle, &mut clock)
        .expect("migration failed");
    assert_eq!(r.stop_reason, StopReason::DirtyThreshold);

    // Hot unassisted guest: forced out by iterations or traffic.
    let mut hot = SyntheticVm::new(128 * MIB, 32 * MIB, 40e6, false);
    let mut clock = SimClock::new();
    let r = PrecopyEngine::new(fast_config(false))
        .migrate(&mut hot, &mut clock)
        .expect("migration failed");
    assert_ne!(r.stop_reason, StopReason::DirtyThreshold);
}
