//! Property-based tests of the migration engine: correctness holds for
//! arbitrary guest shapes, dirtying intensities, and engine policies.

use guestos::coord::CoordPayload;
use guestos::kernel::{GuestKernel, GuestOsConfig};
use guestos::lkm::{DaemonPort, LkmConfig};
use guestos::netlink::NetlinkSocket;
use guestos::process::Pid;
use migrate::config::{CompressionPolicy, MigrationConfig, StopPolicy};
use migrate::precopy::PrecopyEngine;
use migrate::vmhost::MigratableVm;
use netsim::CompressionMethod;
use proptest::prelude::*;
use simkit::units::{Bandwidth, MIB};
use simkit::{DetRng, SimClock, SimDuration, SimTime};
use vmem::{PageClass, VaRange, Vaddr, VmSpec, PAGE_SIZE};

/// A randomly-shaped guest: one app rewriting a hot buffer, optionally
/// assisting with a random live prefix.
struct RandomVm {
    kernel: GuestKernel,
    port: Option<DaemonPort>,
    sock: Option<NetlinkSocket>,
    pid: Pid,
    hot: VaRange,
    dirty_rate: f64,
    rng: DetRng,
    carry: f64,
    ops: u64,
    live_pages: u64,
    prep: bool,
}

impl RandomVm {
    fn new(mem_mb: u64, hot_pages: u64, dirty_rate: f64, assisted: bool, live_pages: u64) -> Self {
        let mut kernel = GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(mem_mb * MIB, 1),
                kernel_bytes: 4 * MIB,
                pagecache_bytes: 4 * MIB,
                kernel_dirty_rate: 0.3e6,
                pagecache_dirty_rate: 0.2e6,
            },
            DetRng::new(17),
        );
        let pid = kernel.spawn("rand");
        let hot = kernel
            .alloc_map(pid, Vaddr(0x40_0000_0000), hot_pages, PageClass::Anon)
            .expect("fits");
        kernel.write_range(pid, hot, PageClass::Anon);
        let (port, sock) = if assisted {
            let port = kernel.load_lkm(LkmConfig::default());
            let sock = kernel.subscribe_netlink(pid);
            (Some(port), Some(sock))
        } else {
            (None, None)
        };
        Self {
            kernel,
            port,
            sock,
            pid,
            hot,
            dirty_rate,
            rng: DetRng::new(23),
            carry: 0.0,
            ops: 0,
            live_pages: live_pages.min(hot_pages),
            prep: false,
        }
    }
}

impl MigratableVm for RandomVm {
    fn kernel(&self) -> &GuestKernel {
        &self.kernel
    }

    fn kernel_mut(&mut self) -> &mut GuestKernel {
        &mut self.kernel
    }

    fn advance_guest(&mut self, now: SimTime, dt: SimDuration) {
        self.kernel.service_lkm(now);
        self.kernel.tick_noise(now, dt);
        if let Some(sock) = &self.sock {
            for msg in sock.recv(now) {
                match msg.payload {
                    CoordPayload::QuerySkipOver => {
                        sock.send(now, CoordPayload::SkipOverAreas(vec![self.hot]))
                    }
                    CoordPayload::PrepareSuspension => self.prep = true,
                    _ => {}
                }
            }
            if self.prep {
                self.prep = false;
                let live = VaRange::new(
                    self.hot.start(),
                    Vaddr(self.hot.start().0 + self.live_pages * PAGE_SIZE),
                );
                if !live.is_empty() {
                    self.kernel.write_range(self.pid, live, PageClass::Anon);
                }
                sock.send(
                    now,
                    CoordPayload::SuspensionReady {
                        areas: vec![self.hot],
                        must_send: vec![live],
                    },
                );
            }
        }
        // Random-page rewrites of the hot buffer.
        let f = self.dirty_rate * dt.as_secs_f64() / PAGE_SIZE as f64 + self.carry;
        let pages = f as u64;
        self.carry = f - pages as f64;
        let hot_pages = self.hot.page_count();
        for _ in 0..pages {
            let p = self.rng.below(hot_pages);
            let va = Vaddr(self.hot.start().0 + p * PAGE_SIZE);
            self.kernel
                .write_range(self.pid, VaRange::from_len(va, 1), PageClass::Anon);
        }
        self.ops += 1;
    }

    fn ops_completed(&self) -> u64 {
        self.ops
    }

    fn daemon_port(&self) -> Option<DaemonPort> {
        self.port.clone()
    }

    fn enforced_gc_duration(&self) -> Option<SimDuration> {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary guest shapes and engine settings, migration always
    /// verifies correct, obeys the stop policy, and accounts consistently.
    #[test]
    fn migration_is_always_correct(
        mem_mb in 64u64..192,
        hot_mb in 4u64..48,
        rate_mb in 0u64..60,
        assisted in any::<bool>(),
        live_pages in 0u64..64,
        max_iterations in 3u32..20,
        compress in 0u8..3,
    ) {
        let mut vm = RandomVm::new(
            mem_mb,
            (hot_mb * MIB / PAGE_SIZE).min(mem_mb * MIB / PAGE_SIZE / 4),
            rate_mb as f64 * 1e6,
            assisted,
            live_pages,
        );
        let mut config = if assisted {
            MigrationConfig::javmm_default()
        } else {
            MigrationConfig::xen_default()
        };
        config.bandwidth = Bandwidth::from_mbytes_per_sec(25.0);
        config.stop = StopPolicy {
            max_iterations,
            ..StopPolicy::default()
        };
        config.compression = match compress {
            0 => CompressionPolicy::Off,
            1 => CompressionPolicy::Uniform(CompressionMethod::Fast),
            _ => CompressionPolicy::PerClass,
        };
        let mut clock = SimClock::new();
        let report = PrecopyEngine::new(config)
            .migrate(&mut vm, &mut clock)
            .expect("migration failed");

        // The one inviolable property.
        prop_assert_eq!(report.verification.mismatched, 0, "{:?}", report.verification);

        // Stop policy: live iterations ≤ cap (+1 wait iteration when
        // assisted, +1 stop-and-copy).
        let slack = if assisted { 2 } else { 1 };
        prop_assert!(report.iteration_count() <= max_iterations + slack);

        // Accounting consistency.
        let sent: u64 = report.iterations.iter().map(|i| i.bytes_sent).sum();
        prop_assert_eq!(sent, report.total_bytes);
        prop_assert!(report.downtime.vm_downtime() >= config_resume());
        prop_assert!(report.total_duration >= report.downtime.vm_downtime());
        if !assisted {
            prop_assert_eq!(report.pages_skipped_transfer(), 0);
            prop_assert_eq!(report.stragglers, 0);
        }
    }
}

fn config_resume() -> SimDuration {
    MigrationConfig::xen_default().resume_time
}
