//! The destination VM: page reception and correctness verification.
//!
//! Because source pages carry exact content versions, migration correctness
//! is checkable precisely: at pause time, every page the protocol promises
//! to have transferred must hold the source's final version at the
//! destination. Pages are *excused* from the check only when the protocol
//! legitimately does not promise them:
//!
//! * pages whose transfer bit is cleared at pause time (skip-over areas —
//!   garbage the application declared unneeded);
//! * frames sitting in the guest kernel's free pool (contents are dead; a
//!   future owner will write before reading);
//! * pristine pages never written by the source (destination zero-fill
//!   already matches).

use guestos::kernel::GuestKernel;
use vmem::{Bitmap, PageInfo, Pfn};

/// Receives pages at the destination host.
#[derive(Debug, Clone)]
pub struct DestinationVm {
    pages: Vec<PageInfo>,
    received: u64,
}

impl DestinationVm {
    /// Creates a destination for a VM of `npages` pages (zero-filled).
    pub fn new(npages: u64) -> Self {
        Self {
            pages: vec![PageInfo::default(); npages as usize],
            received: 0,
        }
    }

    /// Stores a received page.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    pub fn receive(&mut self, pfn: Pfn, page: PageInfo) {
        self.pages[pfn.0 as usize] = page;
        self.received += 1;
    }

    /// Number of page receptions (re-transfers count again).
    pub fn pages_received(&self) -> u64 {
        self.received
    }

    /// Returns the stored page metadata.
    pub fn page(&self, pfn: Pfn) -> PageInfo {
        self.pages[pfn.0 as usize]
    }

    /// `true` once a written version of `pfn` has been received — the
    /// XBZRLE gate: a re-send may be delta-encoded only against a prior
    /// version that actually crossed the wire. Pristine receptions
    /// (version 0) do not count; they are indistinguishable from the
    /// destination's own zero-fill.
    pub fn has_received(&self, pfn: Pfn) -> bool {
        self.pages[pfn.0 as usize].version != 0
    }

    /// Compares destination contents against the paused source.
    ///
    /// `skip_at_pause` holds a set bit for every page whose transfer bit was
    /// *cleared* when the VM paused (i.e. the skip set).
    pub fn verify(&self, source: &GuestKernel, skip_at_pause: &Bitmap) -> VerifyReport {
        let mut report = VerifyReport::default();
        let npages = source.memory().page_count();
        for p in 0..npages {
            let pfn = Pfn(p);
            let src = source.memory().page(pfn);
            let dst = self.pages[p as usize];
            if src.version == dst.version {
                report.matching += 1;
                continue;
            }
            if skip_at_pause.get(pfn) {
                report.excused_skipped += 1;
            } else if source.is_free_frame(pfn) {
                report.excused_free += 1;
            } else {
                report.mismatched += 1;
            }
        }
        report
    }
}

/// Result of a destination correctness check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Pages whose destination content matches the source exactly.
    pub matching: u64,
    /// Stale pages excused because they were in skip-over areas at pause.
    pub excused_skipped: u64,
    /// Stale pages excused because the frame was free at pause.
    pub excused_free: u64,
    /// Pages that SHOULD match but do not — any non-zero value is a
    /// migration correctness bug.
    pub mismatched: u64,
}

impl VerifyReport {
    /// Returns `true` when migration was correct.
    pub fn is_correct(&self) -> bool {
        self.mismatched == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::kernel::GuestOsConfig;
    use simkit::DetRng;
    use vmem::{PageClass, Vaddr, VmSpec};

    fn guest() -> GuestKernel {
        GuestKernel::boot(
            GuestOsConfig {
                spec: VmSpec::new(64 * 1024 * 1024, 1),
                kernel_bytes: 0,
                pagecache_bytes: 0,
                kernel_dirty_rate: 0.0,
                pagecache_dirty_rate: 0.0,
            },
            DetRng::new(1),
        )
    }

    #[test]
    fn exact_copy_verifies() {
        let g = guest();
        let npages = g.memory().page_count();
        let mut dest = DestinationVm::new(npages);
        for p in 0..npages {
            dest.receive(Pfn(p), g.memory().page(Pfn(p)));
        }
        let report = dest.verify(&g, &Bitmap::new(npages));
        assert!(report.is_correct());
        assert_eq!(report.matching, npages);
    }

    #[test]
    fn stale_mapped_page_is_a_mismatch() {
        let mut g = guest();
        let pid = g.spawn("app");
        let r = g.alloc_map(pid, Vaddr(0), 1, PageClass::Anon).unwrap();
        g.write_range(pid, r, PageClass::Anon);
        let npages = g.memory().page_count();
        let dest = DestinationVm::new(npages);
        let report = dest.verify(&g, &Bitmap::new(npages));
        assert_eq!(report.mismatched, 1);
        assert!(!report.is_correct());
    }

    #[test]
    fn skip_marked_page_is_excused() {
        let mut g = guest();
        let pid = g.spawn("app");
        let r = g.alloc_map(pid, Vaddr(0), 1, PageClass::Anon).unwrap();
        g.write_range(pid, r, PageClass::Anon);
        let pfn = g.translate(pid, Vaddr(0)).unwrap();
        let npages = g.memory().page_count();
        let mut skip = Bitmap::new(npages);
        skip.set(pfn);
        let dest = DestinationVm::new(npages);
        let report = dest.verify(&g, &skip);
        assert_eq!(report.mismatched, 0);
        assert_eq!(report.excused_skipped, 1);
    }

    #[test]
    fn freed_frame_is_excused() {
        let mut g = guest();
        let pid = g.spawn("app");
        let r = g.alloc_map(pid, Vaddr(0), 1, PageClass::Anon).unwrap();
        g.write_range(pid, r, PageClass::Anon);
        g.unmap_free(pid, r);
        let npages = g.memory().page_count();
        let dest = DestinationVm::new(npages);
        let report = dest.verify(&g, &Bitmap::new(npages));
        assert_eq!(report.mismatched, 0);
        assert_eq!(report.excused_free, 1);
    }

    #[test]
    fn pristine_pages_match_by_default() {
        let g = guest();
        let npages = g.memory().page_count();
        let dest = DestinationVm::new(npages);
        let report = dest.verify(&g, &Bitmap::new(npages));
        // Nothing was ever written: the zero-filled destination matches.
        assert_eq!(report.mismatched, 0);
        assert_eq!(report.matching, npages);
    }
}
