//! The iterative pre-copy migration engine.
//!
//! Implements Xen's `xc_domain_save` behaviour plus the paper's
//! application-assisted extension:
//!
//! * **Iteration 1** sends every VM page; **iteration k** sends the pages
//!   dirtied during iteration k-1 (the hypervisor's log-dirty bitmap is
//!   read-and-cleared at each iteration boundary).
//! * A page already re-dirtied when the scanner reaches it is **skipped** —
//!   transferring it now would be redundant (Xen's heuristic).
//! * With assistance, the daemon additionally consults the LKM's
//!   **transfer bitmap** and skips any page whose bit is cleared (§3.3.3).
//! * When the stop policy triggers, a vanilla migration pauses the VM
//!   immediately; an assisted migration first notifies the LKM
//!   (`EnteringLastIter`) and keeps transferring — generating little
//!   traffic — until the LKM reports `ReadyToSuspend` (the paper's Figure
//!   8b "second-last iteration"), then pauses.
//! * The **stop-and-copy** sends every remaining dirty page that the final
//!   transfer bitmap allows, then the VM resumes at the destination.
//!
//! Guest execution and page transfer are co-simulated in small quanta: each
//! quantum the engine sends a link-budget's worth of pages and advances the
//! guest, so dirtying races transfer exactly as on real hardware.
//!
//! # Coordination timeouts and graceful degradation
//!
//! Every daemon→LKM handshake is guarded by a deadline from
//! [`CoordPolicy`](crate::config::CoordPolicy): `MigrationBegin` must be
//! acknowledged (`BeginAck`) and `EnteringLastIter` must eventually be
//! answered with `ReadyToSuspend`. Both messages are idempotent (the LKM
//! gates on sequence numbers), so expired deadlines trigger bounded resends
//! with exponential backoff. When the retry budget runs out the engine
//! either **degrades**: it sends `AbortAssist`, abandons skip-over areas,
//! stops consulting the transfer bitmap, re-sends every page it ever
//! skipped on transfer-bit grounds, and completes as vanilla Xen pre-copy
//! (reported as [`MigrationOutcome::DegradedVanilla`]) — or fails with
//! [`MigrateError::CoordTimeout`], per the configured
//! [`FallbackPolicy`](crate::config::FallbackPolicy).
//!
//! # Scan pipeline
//!
//! The scanner is word-granular: all three inputs — the iteration snapshot,
//! the hypervisor dirty log and the LKM transfer bitmap — are dense
//! `u64`-word bitmaps, and the guest only runs *between* quanta, so within
//! a quantum the sendable set is exactly `to_send & transfer & !dirty`
//! computed 64 pages at a time. Skip classification and the per-class
//! traffic/CPU accounting are batched per word run; only the pages actually
//! transferred are visited individually.

use crate::assist::delta::{DeltaOutcome, DELTA_CPU_PER_PAGE};
use crate::assist::ColdState;
use crate::config::{CompressionPolicy, FallbackPolicy, MigrationConfig};
use crate::destination::DestinationVm;
use crate::error::{CoordPhase, MigrateError, MigrationOutcome};
use crate::report::{DowntimeBreakdown, EngineEvent, IterationStats, MigrationReport, StopReason};
use crate::scanpool::{ScanPool, ScanScratch};
use crate::vmhost::MigratableVm;
use guestos::coord::CoordPayload;
use guestos::lkm::DaemonPort;
use netsim::{CompressionMethod, Link, PAGE_HEADER_BYTES};
use simkit::units::Bandwidth;
use simkit::{FaultKind, LinkDegrade, Recorder, SimClock, SimDuration, SimTime, Subsystem};
use vmem::{Bitmap, PageClass, Pfn, PAGE_SIZE};

/// The migration engine.
///
/// # Examples
///
/// ```no_run
/// use migrate::config::MigrationConfig;
/// use migrate::precopy::PrecopyEngine;
/// use migrate::vmhost::MigratableVm;
/// use simkit::SimClock;
///
/// fn migrate_it(vm: &mut dyn MigratableVm) {
///     let mut clock = SimClock::new();
///     let engine = PrecopyEngine::new(MigrationConfig::javmm_default());
///     let report = engine.migrate(vm, &mut clock).expect("migration failed");
///     assert!(report.verification.is_correct());
///     println!(
///         "{} iterations, {} bytes, downtime {}",
///         report.iteration_count(),
///         report.total_bytes,
///         report.downtime.workload_downtime(),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PrecopyEngine {
    config: MigrationConfig,
}

/// Coordination-deadline bookkeeping for the two guarded handshakes.
struct CoordTrack {
    begin_acked: bool,
    begin_deadline: Option<SimTime>,
    begin_wait: SimDuration,
    begin_attempts: u32,
    /// When the (latest) `MigrationBegin` went out; anchors the
    /// begin-ack round-trip histogram.
    begin_sent_at: SimTime,
    ready_deadline: Option<SimTime>,
    ready_wait: SimDuration,
    ready_attempts: u32,
    ready_since: Option<SimTime>,
}

struct RunState {
    link: Link,
    dest: DestinationVm,
    by_class: crate::report::TrafficByClass,
    timeline: simkit::trace::Trace<EngineEvent>,
    ever_dirtied: Bitmap,
    /// Pages ever skipped because of a cleared transfer bit; re-examined at
    /// the stop-and-copy under the *final* bitmap so nothing live is lost.
    deferred_skips: Bitmap,
    cpu: SimDuration,
    wire_bytes: u64,
    /// Pages examined by the word-granular scanner (sends and skips alike);
    /// flushed to the `engine/pages_scanned` counter at snapshot time so
    /// digests can derive scan throughput.
    scan_pages: u64,
    ready: Option<(SimDuration, u32)>,
    recorder: Recorder,
    /// Whether the assisted protocol is still live. Starts as
    /// `config.assisted`; flips to `false` on degradation, after which the
    /// engine behaves exactly like vanilla pre-copy.
    assist: bool,
    /// The fault that degraded the run, if any.
    degraded: Option<FaultKind>,
    /// Cold-page assist state; `None` unless the config enables it, so the
    /// zero-config path allocates and records nothing.
    cold: Option<ColdState>,
    coord: CoordTrack,
    t0: SimTime,
    /// Pending link-degrade fault, consumed when its time arrives.
    link_plan: Option<LinkDegrade>,
    base_bandwidth: Bandwidth,
}

/// Running totals of one live iteration, shared by its scan quanta.
#[derive(Debug, Default)]
struct IterTally {
    cursor: u64,
    sent: u64,
    bytes: u64,
    skip_dirty: u64,
    skip_transfer: u64,
}

/// Why a scan quantum stopped consuming the snapshot.
enum ScanExit {
    /// Link or CPU budget exhausted; the guest gets its execution slice.
    Budget,
    /// No set bit at or after the cursor: the snapshot is drained (refresh
    /// in waiting mode, otherwise the iteration is over).
    Drained,
}

impl PrecopyEngine {
    /// Creates an engine.
    pub fn new(config: MigrationConfig) -> Self {
        Self { config }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &MigrationConfig {
        &self.config
    }

    /// Migrates `vm`, advancing `clock` through the whole operation.
    ///
    /// # Errors
    ///
    /// [`MigrateError::MissingLkm`] if assisted migration is requested but
    /// the guest has no LKM; [`MigrateError::Config`] for an invalid
    /// configuration; [`MigrateError::LinkDown`] if a fault kills the link;
    /// [`MigrateError::CoordTimeout`] when coordination fails for good
    /// under [`FallbackPolicy::Fail`].
    pub fn migrate(
        &self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
    ) -> Result<MigrationReport, MigrateError> {
        self.migrate_recorded(vm, clock, Recorder::disabled())
    }

    /// Like [`PrecopyEngine::migrate`], but with a cross-layer flight
    /// recorder attached: the engine threads `recorder` through the guest
    /// stack (LKM, JVM) and the network link, records its own phase spans
    /// and events, and returns the frozen snapshot in
    /// [`MigrationReport::telemetry`]. The downtime breakdown is derived
    /// from the recorded spans where available.
    ///
    /// Implemented as [`PrecopyEngine::begin`] plus a [`MigrationSession::step`]
    /// loop; a caller that needs to interleave several migrations (the fleet
    /// scheduler) drives the session directly instead.
    pub fn migrate_recorded(
        &self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
        recorder: Recorder,
    ) -> Result<MigrationReport, MigrateError> {
        let mut session = self.begin(vm, clock, recorder)?;
        loop {
            if let SessionStep::Complete(report) = session.step(vm, clock)? {
                return Ok(*report);
            }
        }
    }

    /// Starts a migration without running it: validates the configuration,
    /// attaches telemetry and faults, enables the log-dirty mode and sends
    /// `MigrationBegin` — everything [`PrecopyEngine::migrate_recorded`]
    /// does before its first live iteration — and returns a resumable
    /// [`MigrationSession`].
    ///
    /// Driving the session with [`MigrationSession::step`] until it reports
    /// [`SessionStep::Complete`] is *exactly* equivalent to calling
    /// [`PrecopyEngine::migrate_recorded`]: the split is pure code motion,
    /// locked by the `precopy_equivalence` goldens. Between steps a caller
    /// may re-rate the migration link ([`MigrationSession::set_bandwidth`]),
    /// which is what lets the fleet scheduler arbitrate one shared uplink
    /// across several concurrent sessions.
    ///
    /// # Errors
    ///
    /// Same as [`PrecopyEngine::migrate`].
    pub fn begin(
        &self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
        recorder: Recorder,
    ) -> Result<MigrationSession, MigrateError> {
        self.config.validate()?;
        let t0 = clock.now();
        let npages = vm.kernel().memory().page_count();
        vm.attach_telemetry(recorder.clone());
        vm.install_faults(&self.config.faults);
        let port = if self.config.assisted {
            Some(vm.daemon_port().ok_or(MigrateError::MissingLkm)?)
        } else {
            None
        };

        let mut link = Link::new(self.config.bandwidth);
        link.attach_telemetry(recorder.clone());
        let mut state = RunState {
            link,
            dest: DestinationVm::new(npages),
            by_class: crate::report::TrafficByClass::default(),
            timeline: simkit::trace::Trace::new(),
            ever_dirtied: Bitmap::new(npages),
            deferred_skips: Bitmap::new(npages),
            cpu: SimDuration::ZERO,
            wire_bytes: 0,
            scan_pages: 0,
            ready: None,
            recorder,
            assist: self.config.assisted,
            degraded: None,
            cold: None,
            coord: CoordTrack {
                begin_acked: !self.config.assisted,
                begin_deadline: None,
                begin_wait: self.config.coord.begin_ack_timeout,
                begin_attempts: 0,
                begin_sent_at: t0,
                ready_deadline: None,
                ready_wait: self.config.coord.ready_timeout,
                ready_attempts: 0,
                ready_since: None,
            },
            t0,
            link_plan: self.config.faults.link,
            base_bandwidth: self.config.bandwidth,
        };

        vm.kernel_mut().memory_mut().dirty_log_mut().enable();
        state.timeline.push(clock.now(), EngineEvent::Begin);
        state.recorder.instant(
            clock.now(),
            Subsystem::Engine,
            "begin",
            vec![
                ("assisted", self.config.assisted.into()),
                ("npages", npages.into()),
            ],
        );
        if let Some(port) = &port {
            port.send(clock.now(), CoordPayload::MigrationBegin);
            state.coord.begin_deadline = Some(t0 + self.config.coord.begin_ack_timeout);
            if self.config.cold.enabled() {
                state.cold = Some(ColdState::new(npages, &self.config.cold));
                port.send(clock.now(), CoordPayload::QueryColdMap);
                state.recorder.instant(
                    clock.now(),
                    Subsystem::Engine,
                    "query_cold_map",
                    vec![
                        ("defer", self.config.cold.defer.into()),
                        ("delta", self.config.cold.delta.into()),
                    ],
                );
            }
        }

        Ok(MigrationSession {
            engine: self.clone(),
            state,
            port,
            npages,
            iterations: Vec::new(),
            to_send: Bitmap::new_all_set(npages),
            scratch: ScanScratch::new(self.config.scan_workers),
            t_enter_last: None,
            stop_reason: None,
            finished: false,
        })
    }
}

/// What one [`MigrationSession::step`] call did.
#[derive(Debug)]
pub enum SessionStep {
    /// One live pre-copy iteration ran; the migration continues. The
    /// caller may inspect [`MigrationSession::iterations`] and re-rate the
    /// link before the next step.
    Yielded,
    /// The migration finished this step (stop-and-copy, resume and
    /// verification included); the session is spent.
    Complete(Box<MigrationReport>),
}

/// An in-flight migration that yields control at every iteration boundary.
///
/// Produced by [`PrecopyEngine::begin`]; each [`MigrationSession::step`]
/// runs exactly one live pre-copy iteration (plus the stop-and-copy epilogue
/// on the final one). The session owns the migration link, so a scheduler
/// co-simulating several VMs can call [`MigrationSession::set_bandwidth`]
/// between steps to re-split a shared uplink — the new rate takes effect at
/// the next iteration's first quantum, which is the conservative
/// iteration-granular arbitration the fleet model documents.
pub struct MigrationSession {
    engine: PrecopyEngine,
    state: RunState,
    port: Option<DaemonPort>,
    npages: u64,
    iterations: Vec<IterationStats>,
    to_send: Bitmap,
    /// Reusable chunk buffers, staging arenas and per-worker counters for
    /// the sharded scan pipeline; recycled across iterations so the scan
    /// hot path performs no steady-state allocation.
    scratch: ScanScratch,
    t_enter_last: Option<SimTime>,
    stop_reason: Option<StopReason>,
    finished: bool,
}

impl MigrationSession {
    /// When the migration started (the clock at [`PrecopyEngine::begin`]).
    pub fn started_at(&self) -> SimTime {
        self.state.t0
    }

    /// Live iterations completed so far.
    pub fn iterations(&self) -> &[IterationStats] {
        &self.iterations
    }

    /// Wire bytes put on the link so far.
    pub fn wire_bytes(&self) -> u64 {
        self.state.wire_bytes
    }

    /// Total guest pages the migration covers (the first iteration's
    /// transfer set before any skips).
    pub fn npages(&self) -> u64 {
        self.npages
    }

    /// Whether the engine has notified the LKM and is waiting for
    /// `ReadyToSuspend` (the paper's "second-last iteration").
    pub fn is_waiting(&self) -> bool {
        self.t_enter_last.is_some()
    }

    /// Pages queued for the next live iteration that would actually ship:
    /// the dirty snapshot taken at the end of the last [`Self::step`],
    /// intersected with the LKM's transfer bitmap when assistance is
    /// active. This is the session's own view of its remaining transfer
    /// set — the number an ETA projection should drain, as opposed to the
    /// raw dirtied count, which includes pages the assisted protocol will
    /// skip.
    pub fn pending_transferable_pages(&self, vm: &dyn MigratableVm) -> u64 {
        // Cold pages split out of the snapshot still have to ship (deferred
        // bulk stream or stop-and-copy), so the backlog counts as pending.
        let cold_backlog = self
            .state
            .cold
            .as_ref()
            .map_or(0, |c| c.pending.count_set());
        if !self.state.assist {
            return self.to_send.count_set() + cold_backlog;
        }
        match vm.kernel().lkm() {
            Some(lkm) => {
                let tb = lkm.transfer_bitmap().as_bitmap();
                self.to_send.count_and(tb) + cold_backlog
            }
            None => self.to_send.count_set() + cold_backlog,
        }
    }

    /// Re-rates the migration link. Takes effect at the next step; also
    /// re-anchors the base bandwidth that scheduled link-degrade faults
    /// scale from.
    pub fn set_bandwidth(&mut self, bandwidth: Bandwidth) {
        self.state.link.set_bandwidth(bandwidth);
        self.state.base_bandwidth = bandwidth;
    }

    /// Runs one live pre-copy iteration; on the final one, runs the
    /// stop-and-copy epilogue too and returns the finished report.
    ///
    /// # Panics
    ///
    /// If called again after [`SessionStep::Complete`] was returned.
    ///
    /// # Errors
    ///
    /// Same as [`PrecopyEngine::migrate`].
    pub fn step(
        &mut self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
    ) -> Result<SessionStep, MigrateError> {
        assert!(
            !self.finished,
            "step called on a completed MigrationSession"
        );
        {
            let index = self.iterations.len() as u32 + 1;
            let waiting = self.t_enter_last.is_some();
            self.state
                .timeline
                .push(clock.now(), EngineEvent::IterationStart { index });
            self.state.recorder.instant(
                clock.now(),
                Subsystem::Engine,
                "iteration_start",
                vec![("index", index.into()), ("waiting", waiting.into())],
            );
            let span = self.state.recorder.begin_span(
                clock.now(),
                Subsystem::Engine,
                "precopy_iteration",
                vec![("index", index.into()), ("waiting", waiting.into())],
            );
            let stats = self.engine.run_live_iteration(
                vm,
                clock,
                &mut self.state,
                &mut self.to_send,
                &mut self.scratch,
                index,
                self.port.as_ref(),
                waiting,
            )?;
            self.state.recorder.end_span(
                clock.now(),
                span,
                vec![
                    ("pages_sent", stats.pages_sent.into()),
                    ("bytes_sent", stats.bytes_sent.into()),
                    ("skip_dirty", stats.pages_skipped_dirty.into()),
                    ("skip_transfer", stats.pages_skipped_transfer.into()),
                ],
            );
            self.state.recorder.gauge(
                clock.now(),
                Subsystem::Workload,
                "ops_completed",
                vm.ops_completed() as f64,
            );
            self.state.recorder.hist_dur(
                Subsystem::Engine,
                "iteration_duration_ns",
                stats.duration,
            );
            self.state
                .recorder
                .hist(Subsystem::Engine, "iteration_pages_sent", stats.pages_sent);
            self.state.recorder.hist(
                Subsystem::Engine,
                "iteration_transfer_pps",
                stats.transfer_rate_pps() as u64,
            );
            self.state.recorder.hist(
                Subsystem::Engine,
                "iteration_dirty_pages",
                stats.pages_dirtied_during,
            );
            // Per-iteration dirty counts as an ordered series (cadence 0:
            // iteration-driven, not clocked) — the engine-side feed of the
            // workload observatory.
            self.state.recorder.series_push(
                Subsystem::Engine,
                "iteration_dirty_pages",
                0,
                128,
                clock.now(),
                stats.pages_dirtied_during as f64,
            );
            self.iterations.push(stats);

            if let Some((fu, stragglers)) = self.state.ready {
                self.state
                    .timeline
                    .push(clock.now(), EngineEvent::ReadyReceived);
                self.state.recorder.instant(
                    clock.now(),
                    Subsystem::Engine,
                    "ready_received",
                    vec![
                        ("final_update", fu.into()),
                        ("stragglers", stragglers.into()),
                    ],
                );
                if stragglers > 0 && self.engine.config.coord.degrade_on_stragglers {
                    // The LKM gave up on some assistants; instead of trusting
                    // its forcible un-skip, abandon assistance wholesale.
                    self.engine.degrade(
                        &mut self.state,
                        self.port.as_ref(),
                        clock.now(),
                        FaultKind::AgentStraggler,
                    );
                }
                return self.finish(vm, clock);
            }
            if waiting && !self.state.assist {
                // Degraded while waiting for readiness: the stop policy
                // already fired, so go straight to the stop-and-copy.
                return self.finish(vm, clock);
            }
            if !waiting {
                let pending = self.engine.pending_transferable(vm, self.state.assist);
                let ram = self.npages * PAGE_SIZE;
                let stop = if self.iterations.len() as u32 >= self.engine.config.stop.max_iterations
                {
                    Some(StopReason::MaxIterations)
                } else if self.state.wire_bytes as f64
                    > self.engine.config.stop.max_factor * ram as f64
                {
                    Some(StopReason::TrafficCap)
                } else if pending <= self.engine.config.stop.dirty_threshold_pages
                    && self
                        .state
                        .cold
                        .as_ref()
                        .is_none_or(|c| c.pending.all_clear())
                {
                    // Convergence also requires the cold bulk stream to have
                    // drained: deferred pages are still unsent state.
                    Some(StopReason::DirtyThreshold)
                } else {
                    None
                };
                if let Some(reason) = stop {
                    self.stop_reason = Some(reason);
                    self.state
                        .timeline
                        .push(clock.now(), EngineEvent::StopCondition(reason));
                    self.state.recorder.instant(
                        clock.now(),
                        Subsystem::Engine,
                        "stop_condition",
                        vec![("reason", format!("{reason:?}").into())],
                    );
                    match self.port.clone() {
                        Some(port) if self.state.assist => {
                            port.send(clock.now(), CoordPayload::EnteringLastIter);
                            self.state
                                .timeline
                                .push(clock.now(), EngineEvent::NotifiedLkm);
                            self.state.recorder.instant(
                                clock.now(),
                                Subsystem::Engine,
                                "notified_lkm",
                                vec![],
                            );
                            self.t_enter_last = Some(clock.now());
                            self.state.coord.ready_since = Some(clock.now());
                            self.state.coord.ready_deadline =
                                Some(clock.now() + self.engine.config.coord.ready_timeout);
                        }
                        _ => return self.finish(vm, clock),
                    }
                }
            }

            // Next iteration transfers what was dirtied during this one.
            let snapshot = vm
                .kernel_mut()
                .memory_mut()
                .dirty_log_mut()
                .read_and_clear();
            self.state.ever_dirtied.union_with(&snapshot);
            // Pages of the previous set never reached (or re-dirty-skipped)
            // are dirty again by construction, so the snapshot covers them.
            self.to_send = snapshot;
            self.engine.split_cold(&mut self.state, &mut self.to_send);
        }
        Ok(SessionStep::Yielded)
    }

    /// The epilogue of the run: stop-and-copy, resume, verification and
    /// report assembly — the tail of the original monolithic
    /// `migrate_recorded`, unchanged.
    fn finish(
        &mut self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
    ) -> Result<SessionStep, MigrateError> {
        self.finished = true;
        let state = &mut self.state;
        let to_send = std::mem::replace(&mut self.to_send, Bitmap::new(0));
        let t_enter_last = self.t_enter_last;
        let stop_reason = self.stop_reason;
        let port = &self.port;

        // Stop-and-copy: pause the VM and send everything still pending.
        let t_pause = clock.now();
        state.timeline.push(t_pause, EngineEvent::Paused);
        state
            .recorder
            .instant(t_pause, Subsystem::Engine, "paused", vec![]);
        let sc_span =
            state
                .recorder
                .begin_span(t_pause, Subsystem::Engine, "stop_and_copy", vec![]);
        let last_stats = self.engine.run_stop_and_copy(
            vm,
            clock,
            state,
            to_send,
            self.iterations.len() as u32 + 1,
        );
        let last_iter_duration = last_stats.duration;
        state.recorder.end_span(
            clock.now(),
            sc_span,
            vec![
                ("pages_sent", last_stats.pages_sent.into()),
                ("bytes_sent", last_stats.bytes_sent.into()),
            ],
        );
        self.iterations.push(last_stats);

        // Resume at the destination: log-dirty mode is over.
        vm.kernel_mut().memory_mut().dirty_log_mut().disable();
        state.recorder.record_span(
            clock.now(),
            Subsystem::Engine,
            "resume",
            self.engine.config.resume_time,
            vec![],
        );
        clock.advance(self.engine.config.resume_time);
        state.timeline.push(clock.now(), EngineEvent::Resumed);
        state
            .recorder
            .instant(clock.now(), Subsystem::Engine, "resumed", vec![]);
        state.recorder.gauge(
            clock.now(),
            Subsystem::Workload,
            "ops_completed",
            vm.ops_completed() as f64,
        );
        if let Some(port) = port {
            port.send(clock.now(), CoordPayload::VmResumed);
        }

        // Verification against the paused source. A degraded run abandoned
        // its skip-over areas, so every page must match.
        let skip_at_pause = self.engine.skip_bitmap(vm, self.npages, state.assist);
        let verification = state.dest.verify(vm.kernel(), &skip_at_pause);

        // Freeze the flight recorder and derive the downtime breakdown from
        // its spans where they exist; the LKM-message / VM-query fallbacks
        // keep unrecorded runs reporting identically.
        self.scratch.flush_telemetry(&state.recorder);
        state
            .recorder
            .counter_add(Subsystem::Engine, "pages_scanned", state.scan_pages);
        state.recorder.counter_add(
            Subsystem::Engine,
            "scan_cpu_ns",
            (self.engine.config.cpu_cost_per_page_scan * state.scan_pages).as_nanos(),
        );
        if let Some(cold) = state.cold.as_mut() {
            cold.report.cold_pages = cold.map.count_set();
            let r = cold.report;
            let rec = &state.recorder;
            rec.counter_add(Subsystem::Engine, "cold_pages", r.cold_pages);
            rec.counter_add(Subsystem::Engine, "cold_deferred_pages", r.deferred_pages);
            rec.counter_add(
                Subsystem::Engine,
                "cold_deferred_sent_pages",
                r.deferred_sent_pages,
            );
            rec.counter_add(
                Subsystem::Engine,
                "cold_deferred_sent_bytes",
                r.deferred_sent_bytes,
            );
            rec.counter_add(
                Subsystem::Engine,
                "cold_pending_at_pause",
                r.pending_at_pause,
            );
            rec.counter_add(Subsystem::Engine, "delta_cache_hits", r.delta_hits);
            rec.counter_add(Subsystem::Engine, "delta_cache_misses", r.delta_misses);
            rec.counter_add(
                Subsystem::Engine,
                "delta_cache_fallbacks",
                r.delta_fallbacks,
            );
            rec.counter_add(
                Subsystem::Engine,
                "delta_cache_overflows",
                r.delta_overflows,
            );
            rec.counter_add(Subsystem::Engine, "delta_wire_bytes", r.delta_wire_bytes);
            rec.counter_add(Subsystem::Engine, "delta_full_bytes", r.delta_full_bytes);
            rec.hist(
                Subsystem::Engine,
                "delta_saved_bytes_permille",
                (r.saved_bytes_ratio() * 1000.0) as u64,
            );
            rec.instant(
                clock.now(),
                Subsystem::Engine,
                "delta_cache_outcome",
                vec![
                    ("hits", r.delta_hits.into()),
                    ("misses", r.delta_misses.into()),
                    ("fallbacks", r.delta_fallbacks.into()),
                    ("overflows", r.delta_overflows.into()),
                ],
            );
        }
        state.recorder.instant(
            clock.now(),
            Subsystem::Engine,
            "migration_outcome",
            vec![
                (
                    "kind",
                    match state.degraded {
                        Some(_) => "degraded_vanilla".into(),
                        None => "completed".into(),
                    },
                ),
                (
                    "fault",
                    match state.degraded {
                        Some(fault) => fault.name().into(),
                        None => "none".into(),
                    },
                ),
            ],
        );
        let telemetry = state.recorder.snapshot();
        let (msg_final_update, stragglers) = state.ready.unwrap_or((SimDuration::ZERO, 0));
        let final_update = telemetry
            .spans_named(Subsystem::Lkm, "final_bitmap_update")
            .last()
            .map(|s| s.duration())
            .unwrap_or(msg_final_update);
        let enforced_gc = telemetry
            .spans_named(Subsystem::Gc, "enforced_gc")
            .iter()
            .map(|s| s.duration())
            .fold(SimDuration::ZERO, |acc, d| acc + d);
        let enforced_gc = if enforced_gc.is_zero() {
            vm.enforced_gc_duration().unwrap_or(SimDuration::ZERO)
        } else {
            enforced_gc
        };
        let safepoint_wait = match t_enter_last {
            Some(t) => t_pause
                .saturating_since(t)
                .saturating_sub(enforced_gc)
                .saturating_sub(final_update),
            None => SimDuration::ZERO,
        };

        Ok(SessionStep::Complete(Box::new(MigrationReport {
            total_duration: clock.now().saturating_since(state.t0),
            total_bytes: state.wire_bytes,
            downtime: DowntimeBreakdown {
                safepoint_wait,
                enforced_gc,
                final_update,
                last_iteration: last_iter_duration,
                resume: self.engine.config.resume_time,
            },
            cpu_time: state.cpu,
            verification,
            traffic_by_class: state.by_class,
            stop_reason: stop_reason.unwrap_or(StopReason::DirtyThreshold),
            outcome: match state.degraded {
                Some(fault) => MigrationOutcome::DegradedVanilla { fault },
                None => MigrationOutcome::Completed,
            },
            timeline: std::mem::replace(&mut state.timeline, simkit::trace::Trace::new()),
            cold: state.cold.take().map(|c| c.report),
            lkm: vm.kernel().lkm().map(|l| l.stats().clone()),
            stragglers,
            iterations: std::mem::take(&mut self.iterations),
            telemetry,
        })))
    }
}

impl PrecopyEngine {
    /// Abandons the assisted protocol: notify the LKM (`AbortAssist`, so it
    /// restores its transfer bitmap and releases held applications), stop
    /// consulting the transfer bitmap, and record the triggering fault.
    fn degrade(
        &self,
        state: &mut RunState,
        port: Option<&DaemonPort>,
        now: SimTime,
        fault: FaultKind,
    ) {
        if !state.assist {
            return;
        }
        state.assist = false;
        state.degraded = Some(fault);
        if let Some(cold) = state.cold.as_mut() {
            // Deferred cold pages were split out of earlier snapshots and
            // never sent; they may no longer be dirty, so park them with the
            // deferred skips for re-examination at the stop-and-copy.
            state.deferred_skips.union_with(&cold.pending);
            cold.pending.clear_all();
        }
        if let Some(port) = port {
            port.send(now, CoordPayload::AbortAssist);
            state.recorder.instant(
                now,
                Subsystem::Engine,
                "abort_assist_sent",
                vec![("fault", fault.name().into())],
            );
        }
        state.timeline.push(now, EngineEvent::Degraded(fault));
        state.recorder.instant(
            now,
            Subsystem::Engine,
            "degraded",
            vec![("fault", fault.name().into())],
        );
    }

    /// Applies a scheduled mid-run link degrade once its time arrives.
    fn apply_link_plan(&self, state: &mut RunState, now: SimTime) -> Result<(), MigrateError> {
        if let Some(plan) = state.link_plan {
            if now.saturating_since(state.t0) >= plan.after {
                state.link_plan = None;
                if plan.factor <= 0.0 {
                    return Err(MigrateError::LinkDown);
                }
                state.link.set_bandwidth(Bandwidth::from_bytes_per_sec(
                    state.base_bandwidth.bytes_per_sec() * plan.factor,
                ));
                state.recorder.instant(
                    now,
                    Subsystem::Engine,
                    "link_degraded",
                    vec![("factor", plan.factor.into())],
                );
            }
        }
        Ok(())
    }

    /// Checks the coordination deadlines; resends idempotent handshake
    /// messages with backoff, degrading (or failing) once the retry budget
    /// is exhausted.
    fn check_coord_deadlines(
        &self,
        state: &mut RunState,
        port: &DaemonPort,
        now: SimTime,
    ) -> Result<(), MigrateError> {
        let coord = &self.config.coord;
        if !state.coord.begin_acked && state.coord.begin_deadline.is_some_and(|dl| now >= dl) {
            if state.coord.begin_attempts < coord.retry_limit {
                state.coord.begin_attempts += 1;
                state.coord.begin_wait = SimDuration::from_secs_f64(
                    state.coord.begin_wait.as_secs_f64() * coord.retry_backoff,
                );
                port.send(now, CoordPayload::MigrationBegin);
                state.coord.begin_sent_at = now;
                state.coord.begin_deadline = Some(now + state.coord.begin_wait);
                self.record_retry(state, now, "migration_begin", state.coord.begin_attempts);
            } else {
                state.coord.begin_deadline = None;
                return self.coord_exhausted(
                    state,
                    port,
                    now,
                    FaultKind::BeginAckTimeout,
                    CoordPhase::BeginAck,
                    now.saturating_since(state.t0),
                );
            }
        }
        if state.assist
            && state.ready.is_none()
            && state.coord.ready_deadline.is_some_and(|dl| now >= dl)
        {
            if state.coord.ready_attempts < coord.retry_limit {
                state.coord.ready_attempts += 1;
                state.coord.ready_wait = SimDuration::from_secs_f64(
                    state.coord.ready_wait.as_secs_f64() * coord.retry_backoff,
                );
                port.send(now, CoordPayload::EnteringLastIter);
                state.coord.ready_deadline = Some(now + state.coord.ready_wait);
                self.record_retry(state, now, "entering_last_iter", state.coord.ready_attempts);
            } else {
                state.coord.ready_deadline = None;
                let since = state.coord.ready_since.unwrap_or(state.t0);
                return self.coord_exhausted(
                    state,
                    port,
                    now,
                    FaultKind::ReadyTimeout,
                    CoordPhase::Ready,
                    now.saturating_since(since),
                );
            }
        }
        Ok(())
    }

    fn record_retry(
        &self,
        state: &mut RunState,
        now: SimTime,
        message: &'static str,
        attempt: u32,
    ) {
        state
            .timeline
            .push(now, EngineEvent::CoordRetry { attempt });
        state.recorder.instant(
            now,
            Subsystem::Engine,
            "coord_retry",
            vec![("message", message.into()), ("attempt", attempt.into())],
        );
    }

    fn coord_exhausted(
        &self,
        state: &mut RunState,
        port: &DaemonPort,
        now: SimTime,
        fault: FaultKind,
        phase: CoordPhase,
        waited: SimDuration,
    ) -> Result<(), MigrateError> {
        match self.config.fallback {
            FallbackPolicy::Fail => Err(MigrateError::CoordTimeout { phase, waited }),
            FallbackPolicy::DegradeToVanilla => {
                self.degrade(state, Some(port), now, fault);
                Ok(())
            }
        }
    }

    /// One live iteration: scan `to_send`, transferring at link speed while
    /// the guest keeps running. In `waiting` mode the iteration ends when
    /// the LKM reports readiness — or when the coordination machinery gives
    /// up and degrades the run.
    ///
    /// Scanning is word-granular and chunk-pipelined (see the module docs
    /// and [`crate::scanpool`]): words are classified a chunk at a time —
    /// sharded across the scan pool and double-buffered so the next chunk
    /// classifies while this one's pages go on the wire — then retired
    /// send-free words wholesale and sendable pages bit by bit, so the link
    /// budget cuts off at exactly the same page as a per-bit scan would.
    /// Chunks never outlive a quantum, so every classification the walk
    /// consumes equals what a per-word read would return at that moment.
    #[allow(clippy::too_many_arguments)]
    fn run_live_iteration(
        &self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
        state: &mut RunState,
        to_send: &mut Bitmap,
        scratch: &mut ScanScratch,
        index: u32,
        port: Option<&DaemonPort>,
        waiting: bool,
    ) -> Result<IterationStats, MigrateError> {
        let start = clock.now();
        let pages_to_send = to_send.count_set();
        let mut tally = IterTally::default();
        let mut quanta = 0u64;

        'outer: loop {
            // Send a quantum's worth of pages.
            let q_start = clock.now();
            let q_bytes = tally.bytes;
            let mut budget = state.link.budget(self.config.quantum) as i64;
            let mut cpu_budget = self.config.quantum;
            // The guest ran since the last quantum: every classified chunk
            // is stale. Re-arm the prefetch from last quantum's walk rate.
            scratch.begin_quantum();
            loop {
                match self.scan_quantum(
                    &*vm,
                    state,
                    to_send,
                    scratch,
                    &mut tally,
                    &mut budget,
                    &mut cpu_budget,
                ) {
                    ScanExit::Budget => break,
                    ScanExit::Drained => {
                        if waiting && state.assist {
                            // Snapshot drained but the guest is still
                            // preparing: pick up newly dirtied pages under
                            // the same iteration box.
                            let snap = vm
                                .kernel_mut()
                                .memory_mut()
                                .dirty_log_mut()
                                .read_and_clear();
                            state.ever_dirtied.union_with(&snap);
                            *to_send = snap;
                            self.split_cold(state, to_send);
                            tally.cursor = 0;
                            scratch.invalidate();
                            if to_send.all_clear() {
                                // No hot work left: hand the rest of the
                                // quantum to the cold bulk stream.
                                self.drain_cold_quantum(
                                    &*vm,
                                    state,
                                    &mut tally,
                                    &mut budget,
                                    &mut cpu_budget,
                                );
                                break;
                            }
                            continue;
                        }
                        // Hot snapshot drained: the cold bulk stream may
                        // spend whatever budget the hot pages left over.
                        if !self.drain_cold_quantum(
                            &*vm,
                            state,
                            &mut tally,
                            &mut budget,
                            &mut cpu_budget,
                        ) {
                            // Cold backlog outlived the quantum: let the
                            // guest run and keep the iteration going.
                            break;
                        }
                        // Credit the partial quantum's traffic before leaving.
                        state.link.sample_utilization(
                            q_start,
                            SimDuration::ZERO,
                            tally.bytes - q_bytes,
                        );
                        break 'outer;
                    }
                }
            }

            // Let the guest run for the quantum.
            vm.advance_guest(clock.now(), self.config.quantum);
            clock.advance(self.config.quantum);
            state
                .link
                .sample_utilization(q_start, self.config.quantum, tally.bytes - q_bytes);
            quanta += 1;

            self.apply_link_plan(state, clock.now())?;
            self.adopt_cold(&*vm, state, to_send);

            if let Some(port) = port {
                if state.assist && state.ready.is_none() {
                    for msg in port.recv(clock.now()) {
                        match msg.payload {
                            CoordPayload::BeginAck => {
                                // The LKM re-acks every (retried) begin; only
                                // the first ack is a meaningful round-trip.
                                if !state.coord.begin_acked {
                                    state.recorder.hist_dur(
                                        Subsystem::Engine,
                                        "coord_begin_rtt_ns",
                                        clock.now().saturating_since(state.coord.begin_sent_at),
                                    );
                                }
                                state.coord.begin_acked = true;
                                state.coord.begin_deadline = None;
                            }
                            CoordPayload::ReadyToSuspend {
                                final_update,
                                stragglers,
                            } => {
                                if let Some(since) = state.coord.ready_since {
                                    state.recorder.hist_dur(
                                        Subsystem::Engine,
                                        "coord_ready_rtt_ns",
                                        clock.now().saturating_since(since),
                                    );
                                }
                                state.ready = Some((final_update, stragglers));
                            }
                            _ => {}
                        }
                    }
                    self.check_coord_deadlines(state, port, clock.now())?;
                }
            }
            if waiting && (state.ready.is_some() || !state.assist) {
                break;
            }
        }

        // An empty iteration still costs (at least) one bitmap read.
        if quanta == 0 {
            vm.advance_guest(clock.now(), self.config.quantum);
            clock.advance(self.config.quantum);
        }

        Ok(IterationStats {
            index,
            start,
            duration: clock.now().saturating_since(start),
            pages_to_send,
            pages_sent: tally.sent,
            bytes_sent: tally.bytes,
            pages_skipped_dirty: tally.skip_dirty,
            pages_skipped_transfer: tally.skip_transfer,
            pages_dirtied_during: vm.kernel().memory().dirty_log().dirty_count(),
        })
    }

    /// The scan half of one quantum: consume classified chunks, retiring
    /// send-free words wholesale and walking sendable pages in PFN order,
    /// until a budget runs out ([`ScanExit::Budget`]) or the snapshot has
    /// no set bit at or after the cursor ([`ScanExit::Drained`]). The body
    /// is the word walk of the serial scanner verbatim — only the source of
    /// the per-word classification changed, from two bitmap reads to the
    /// chunk pipeline — so every report field and budget cutoff is
    /// bit-identical to the serial path at any worker count.
    #[allow(clippy::too_many_arguments)]
    fn scan_quantum(
        &self,
        vm: &dyn MigratableVm,
        state: &mut RunState,
        to_send: &mut Bitmap,
        scratch: &mut ScanScratch,
        tally: &mut IterTally,
        budget: &mut i64,
        cpu_budget: &mut SimDuration,
    ) -> ScanExit {
        while *budget > 0 && !cpu_budget.is_zero() {
            let Some(first) = to_send.next_set_at(tally.cursor) else {
                return ScanExit::Drained;
            };
            let wi = (first.0 / 64) as usize;
            // Processed pages always leave the snapshot, so the whole
            // word is still-pending work; whatever the scanner never
            // reaches is the leftover the stop-and-copy inherits.
            let w = to_send.words()[wi];
            {
                let kernel = vm.kernel();
                let d_words = kernel.memory().dirty_log().peek_ref().words();
                let t_words = if state.assist {
                    kernel
                        .lkm()
                        .map(|l| l.transfer_bitmap().as_bitmap().words())
                } else {
                    None
                };
                scratch.ensure(wi, to_send.words(), d_words, t_words);
            }
            let wc = scratch.class_at(wi);
            let skips_t = wc.skips_transfer;
            let skips_d = wc.skips_dirty;
            let sends = wc.sends;

            if sends == 0 {
                // A word with no sendable page consumes no link budget:
                // retire all 64 pages in one step.
                state.cpu += self.config.cpu_cost_per_page_scan * u64::from(w.count_ones());
                state.scan_pages += u64::from(w.count_ones());
                tally.skip_transfer += u64::from(skips_t.count_ones());
                tally.skip_dirty += u64::from(skips_d.count_ones());
                state.deferred_skips.set_bits_in_word(wi, skips_t);
                to_send.clear_bits_in_word(wi, w);
                tally.cursor = (wi as u64 + 1) * 64;
                continue;
            }

            // The word contains sends: walk them in PFN order, retiring
            // the budget-free skips between consecutive sends in bulk
            // and batching the traffic/CPU accounting for the word run.
            let mut pending_sends = sends;
            let mut word_wire = 0u64;
            let mut word_cpu = SimDuration::ZERO;
            let mut class_bytes = [0u64; PageClass::ALL.len()];
            loop {
                let bit = u64::from(pending_sends.trailing_zeros());
                // Unprocessed pages below the send are skips (earlier
                // sends were already cleared from the snapshot).
                let below = to_send.words()[wi] & ((1u64 << bit) - 1);
                if below != 0 {
                    state.cpu += self.config.cpu_cost_per_page_scan * u64::from(below.count_ones());
                    state.scan_pages += u64::from(below.count_ones());
                    tally.skip_transfer += u64::from((below & skips_t).count_ones());
                    tally.skip_dirty += u64::from((below & skips_d).count_ones());
                    state.deferred_skips.set_bits_in_word(wi, below & skips_t);
                    to_send.clear_bits_in_word(wi, below);
                }
                let pfn = Pfn(wi as u64 * 64 + bit);
                to_send.clear_bits_in_word(wi, 1u64 << bit);
                tally.cursor = pfn.0 + 1;
                state.cpu += self.config.cpu_cost_per_page_scan;
                state.scan_pages += 1;
                let (wire, cpu, class) = self.transmit_page(vm, state, pfn);
                *budget -= wire as i64;
                *cpu_budget = cpu_budget.saturating_sub(cpu);
                tally.bytes += wire;
                tally.sent += 1;
                word_wire += wire;
                class_bytes[class.index()] += wire;
                word_cpu +=
                    cpu + SimDuration::from_secs_f64(wire as f64 * self.config.cpu_cost_per_byte);
                pending_sends &= pending_sends - 1;
                if *budget <= 0 || cpu_budget.is_zero() {
                    // Budget cut off mid-word: the unreached pages (skips
                    // included) stay in the snapshot for the next quantum,
                    // exactly as a per-bit scan would leave them.
                    break;
                }
                if pending_sends == 0 {
                    // Trailing skips after the last send are budget-free.
                    let rest = to_send.words()[wi];
                    if rest != 0 {
                        state.cpu +=
                            self.config.cpu_cost_per_page_scan * u64::from(rest.count_ones());
                        state.scan_pages += u64::from(rest.count_ones());
                        tally.skip_transfer += u64::from((rest & skips_t).count_ones());
                        tally.skip_dirty += u64::from((rest & skips_d).count_ones());
                        state.deferred_skips.set_bits_in_word(wi, rest & skips_t);
                        to_send.clear_bits_in_word(wi, rest);
                    }
                    tally.cursor = (wi as u64 + 1) * 64;
                    break;
                }
            }
            // Flush the word run's batched accounting.
            state.link.record_send(word_wire);
            state.wire_bytes += word_wire;
            for class in PageClass::ALL {
                let b = class_bytes[class.index()];
                if b != 0 {
                    state.by_class.add(class, b);
                }
            }
            state.cpu += word_cpu;
        }
        ScanExit::Budget
    }

    /// The stop-and-copy: VM paused, remaining pages pushed at line rate.
    fn run_stop_and_copy(
        &self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
        state: &mut RunState,
        leftover: Bitmap,
        index: u32,
    ) -> IterationStats {
        let start = clock.now();
        // Everything still dirty, everything left over from the interrupted
        // snapshot, and every page we ever skipped on transfer-bit grounds —
        // all filtered through the *final* transfer bitmap below.
        let mut final_set = vm
            .kernel_mut()
            .memory_mut()
            .dirty_log_mut()
            .read_and_clear();
        state.ever_dirtied.union_with(&final_set);
        final_set.union_with(&leftover);
        final_set.union_with(&state.deferred_skips);
        if let Some(cold) = state.cold.as_mut() {
            // The cold backlog never shipped live: it rides the
            // stop-and-copy (as deltas where the cache holds a prior
            // version).
            cold.report.pending_at_pause = cold.pending.count_set();
            final_set.union_with(&cold.pending);
            cold.pending.clear_all();
        }
        if self.config.last_iter_considers_all_dirtied {
            final_set.union_with(&state.ever_dirtied);
        }

        // The VM is paused, so the final transfer bitmap is immutable: the
        // whole skip classification collapses to one word-wise intersection,
        // and every surviving bit is a send. A degraded run ignores the
        // bitmap entirely — everything pending goes on the wire.
        let pages_to_send = final_set.count_set();
        state.cpu += self.config.cpu_cost_per_page_scan * pages_to_send;
        state.scan_pages += pages_to_send;
        let mut sendable = final_set;
        let skip_transfer = if state.assist {
            match vm.kernel().lkm() {
                Some(lkm) => {
                    let tb = lkm.transfer_bitmap().as_bitmap();
                    // The skip count is a popcount fold — sharded by region
                    // across the scan pool, exact by partition additivity.
                    let skipped = ScanPool::new(self.config.scan_workers)
                        .sum_shards(sendable.word_count(), |r| sendable.count_and_not_in(tb, r));
                    sendable.intersect_with(tb);
                    skipped
                }
                None => 0,
            }
        } else {
            0
        };

        let mut sent = 0u64;
        let mut bytes = 0u64;
        for wi in 0..sendable.word_count() {
            let mut bits = sendable.words()[wi];
            if bits == 0 {
                continue;
            }
            let mut word_wire = 0u64;
            let mut word_cpu = SimDuration::ZERO;
            let mut class_bytes = [0u64; PageClass::ALL.len()];
            while bits != 0 {
                let bit = u64::from(bits.trailing_zeros());
                bits &= bits - 1;
                let pfn = Pfn(wi as u64 * 64 + bit);
                let (wire, cpu, class) = self.transmit_page(vm, state, pfn);
                bytes += wire;
                sent += 1;
                word_wire += wire;
                class_bytes[class.index()] += wire;
                word_cpu +=
                    cpu + SimDuration::from_secs_f64(wire as f64 * self.config.cpu_cost_per_byte);
            }
            state.link.record_send(word_wire);
            state.wire_bytes += word_wire;
            for class in PageClass::ALL {
                let b = class_bytes[class.index()];
                if b != 0 {
                    state.by_class.add(class, b);
                }
            }
            state.cpu += word_cpu;
        }
        // The VM is paused: transfer time passes without guest execution.
        let duration = state.link.time_to_send(bytes);
        state.link.sample_utilization(start, duration, bytes);
        clock.advance(duration);

        IterationStats {
            index,
            start,
            duration,
            pages_to_send,
            pages_sent: sent,
            bytes_sent: bytes,
            pages_skipped_dirty: 0,
            pages_skipped_transfer: skip_transfer,
            pages_dirtied_during: 0,
        }
    }

    /// Computes the wire cost of one page and stores it at the destination.
    ///
    /// Traffic and CPU accounting are left to the caller, which batches
    /// them per word run; returns (wire bytes, compression CPU, class).
    fn transmit_page(
        &self,
        vm: &dyn MigratableVm,
        state: &mut RunState,
        pfn: Pfn,
    ) -> (u64, SimDuration, PageClass) {
        let page = vm.kernel().memory().page(pfn);
        let method = self.method_for(page.class);
        let full_body = method.compressed_size(PAGE_SIZE, page.class.compression_ratio());
        let mut body = full_body;
        let mut cpu = method.cpu_cost(PAGE_SIZE);
        // XBZRLE delta action: a *re-send* — a page whose prior version the
        // destination already holds — may ship as a run-length-encoded XOR
        // against the version in the delta page cache. First sends (the
        // bulk copy) run no codec; they only prime the cache, so a cached
        // entry always means the destination can decode against it.
        if state.assist {
            if let Some(cold) = state.cold.as_mut() {
                if let Some(cache) = cold.delta.as_mut() {
                    if state.dest.has_received(pfn) {
                        let (outcome, overflow) = cache.consult(pfn, page.version, full_body);
                        if overflow {
                            cold.report.delta_overflows += 1;
                        }
                        cpu += DELTA_CPU_PER_PAGE;
                        match outcome {
                            DeltaOutcome::Miss => cold.report.delta_misses += 1,
                            DeltaOutcome::Fallback => cold.report.delta_fallbacks += 1,
                            DeltaOutcome::Delta { body: delta_body } => {
                                cold.report.delta_hits += 1;
                                cold.report.delta_wire_bytes += delta_body + PAGE_HEADER_BYTES;
                                cold.report.delta_full_bytes += full_body + PAGE_HEADER_BYTES;
                                body = delta_body;
                            }
                        }
                    } else if cache.prime(pfn, page.version) {
                        cold.report.delta_overflows += 1;
                    }
                }
            }
        }
        let wire = body + PAGE_HEADER_BYTES;
        state.dest.receive(pfn, page);
        (wire, cpu, page.class)
    }

    /// Splits a fresh hot snapshot against the accumulated cold map: cold
    /// dirty pages leave the snapshot for the deferred backlog (the defer
    /// action); hot pages stay. No-op unless deferral is configured.
    fn split_cold(&self, state: &mut RunState, to_send: &mut Bitmap) {
        if !state.assist {
            return;
        }
        let Some(cold) = state.cold.as_mut() else {
            return;
        };
        if !cold.defer {
            return;
        }
        let mut moved = cold.map.clone();
        moved.intersect_with(to_send);
        let n = moved.count_set();
        if n > 0 {
            cold.report.deferred_pages += n;
            cold.pending.union_with(&moved);
            to_send.subtract(&moved);
        }
    }

    /// Folds the LKM's latest cold-region map into the engine's classifier.
    /// Newly cold pages are masked out of the live hot snapshot into the
    /// deferred backlog when the defer action is on; the delta action keys
    /// off the accumulated map alone. The LKM map only ever grows during a
    /// migration, so a popcount guard makes the no-change case free.
    fn adopt_cold(&self, vm: &dyn MigratableVm, state: &mut RunState, to_send: &mut Bitmap) {
        if !state.assist || state.cold.is_none() {
            return;
        }
        let Some(lkm_cold) = vm.kernel().lkm().and_then(|l| l.cold_bitmap()) else {
            return;
        };
        let total = lkm_cold.count_set();
        let cold = state.cold.as_mut().expect("cold state");
        if total == cold.adopted_bits {
            return;
        }
        cold.adopted_bits = total;
        let mut added = lkm_cold.clone();
        added.subtract(&cold.map);
        cold.map.union_with(&added);
        if cold.defer {
            added.intersect_with(to_send);
            let moved = added.count_set();
            if moved > 0 {
                cold.report.deferred_pages += moved;
                cold.pending.union_with(&added);
                to_send.subtract(&added);
            }
        }
    }

    /// Drains the deferred cold backlog through the remaining quantum
    /// budget — the low-priority bulk stream. Runs only once the hot
    /// snapshot is empty, so hot iterations always take precedence.
    /// Returns `true` when no cold work remains (or none exists).
    fn drain_cold_quantum(
        &self,
        vm: &dyn MigratableVm,
        state: &mut RunState,
        tally: &mut IterTally,
        budget: &mut i64,
        cpu_budget: &mut SimDuration,
    ) -> bool {
        if !state.assist || state.cold.as_ref().is_none_or(|c| !c.defer) {
            return true;
        }
        let mut cursor = 0u64;
        loop {
            if *budget <= 0 || cpu_budget.is_zero() {
                return state
                    .cold
                    .as_ref()
                    .is_none_or(|c| c.pending.next_set_at(cursor).is_none());
            }
            let Some(pfn) = state
                .cold
                .as_ref()
                .and_then(|c| c.pending.next_set_at(cursor))
            else {
                return true;
            };
            cursor = pfn.0 + 1;
            state.cold.as_mut().expect("cold state").pending.clear(pfn);
            state.cpu += self.config.cpu_cost_per_page_scan;
            state.scan_pages += 1;
            // A cold page re-dirtied since it was deferred rides the next
            // dirty snapshot instead (Xen's skip-if-redirtied, applied to
            // the bulk stream).
            if vm.kernel().memory().dirty_log().peek_ref().get(pfn) {
                tally.skip_dirty += 1;
                continue;
            }
            // Respect the transfer bitmap: a deferred page inside a
            // skip-over area is the application's to drop, not ours.
            if let Some(lkm) = vm.kernel().lkm() {
                if !lkm.transfer_bitmap().as_bitmap().get(pfn) {
                    tally.skip_transfer += 1;
                    state.deferred_skips.set(pfn);
                    continue;
                }
            }
            let (wire, cpu, class) = self.transmit_page(vm, state, pfn);
            *budget -= wire as i64;
            *cpu_budget = cpu_budget.saturating_sub(cpu);
            tally.bytes += wire;
            tally.sent += 1;
            state.link.record_send(wire);
            state.wire_bytes += wire;
            state.by_class.add(class, wire);
            state.cpu +=
                cpu + SimDuration::from_secs_f64(wire as f64 * self.config.cpu_cost_per_byte);
            let cold = state.cold.as_mut().expect("cold state");
            cold.report.deferred_sent_pages += 1;
            cold.report.deferred_sent_bytes += wire;
        }
    }

    fn method_for(&self, class: PageClass) -> CompressionMethod {
        match self.config.compression {
            CompressionPolicy::Off => CompressionMethod::None,
            CompressionPolicy::Uniform(m) => m,
            CompressionPolicy::PerClass => {
                if class.compression_ratio() < 0.5 {
                    CompressionMethod::Strong
                } else {
                    CompressionMethod::Fast
                }
            }
        }
    }

    /// Dirty pages the transfer bitmap still allows sending — what the
    /// stop policy's threshold really cares about. For vanilla (or
    /// degraded) migration this equals the dirty count.
    fn pending_transferable(&self, vm: &dyn MigratableVm, assist: bool) -> u64 {
        let log = vm.kernel().memory().dirty_log();
        if !assist {
            return log.dirty_count();
        }
        match vm.kernel().lkm() {
            // An allocation-free word-AND popcount over both bitmaps,
            // sharded by region across the scan pool (the partial popcounts
            // sum exactly, so the sharded fold equals the serial one).
            Some(lkm) => {
                let dirty = log.peek_ref();
                let tb = lkm.transfer_bitmap().as_bitmap();
                ScanPool::new(self.config.scan_workers)
                    .sum_shards(dirty.word_count(), |r| dirty.count_and_in(tb, r))
            }
            None => log.dirty_count(),
        }
    }

    /// The skip set at pause time: pages whose final transfer bit is clear —
    /// the word-wise negation of the LKM's transfer bitmap. Empty for
    /// vanilla and degraded runs (everything is verified).
    fn skip_bitmap(&self, vm: &dyn MigratableVm, npages: u64, assist: bool) -> Bitmap {
        if assist {
            if let Some(lkm) = vm.kernel().lkm() {
                let mut skip = lkm.transfer_bitmap().as_bitmap().clone();
                skip.invert();
                return skip;
            }
        }
        Bitmap::new(npages)
    }
}
