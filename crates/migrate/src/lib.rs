#![warn(missing_docs)]
//! `migrate` — pre-copy live migration with optional application assistance.
//!
//! The engine ([`precopy::PrecopyEngine`]) reproduces Xen's iterative
//! pre-copy policy (iteration cap, traffic cap, dirty threshold,
//! skip-if-redirtied) and layers the paper's assisted protocol on top:
//! transfer-bitmap consultation on every send decision, the
//! `EnteringLastIter` → `ReadyToSuspend` handshake with the guest LKM, and
//! a stop-and-copy that honours the final transfer bitmap. Destination
//! correctness is checked exactly via page content versions
//! ([`destination`]). The §6 extensions live in [`policy`] (adaptive
//! strategy choice) and the compression options of
//! [`config::CompressionPolicy`]; [`checkpoint`] applies the same
//! skip-over machinery to RemusDB-style continuous replication.
//!
//! Coordination with the guest is fallible: every handshake carries a
//! timeout from [`config::CoordPolicy`] with bounded retries, and when the
//! budget runs out the engine degrades to vanilla pre-copy (or fails, per
//! [`config::FallbackPolicy`]) — see [`error::MigrationOutcome`] and
//! [`error::MigrateError`]. Deterministic fault injection is configured
//! through the [`simkit::FaultPlan`] carried by the config.

pub mod assist;
pub mod checkpoint;
pub mod config;
pub mod destination;
pub mod digest;
pub mod error;
pub mod policy;
pub mod postcopy;
pub mod precopy;
pub mod report;
pub mod scanpool;
pub mod sla;
pub mod vmhost;

pub use assist::{ColdAssistConfig, ColdReport};
pub use checkpoint::{CheckpointConfig, CheckpointEngine, CheckpointReport};
pub use config::{
    CompressionPolicy, CoordPolicy, FallbackPolicy, MigrationConfig, MigrationConfigBuilder,
    StopPolicy,
};
pub use destination::{DestinationVm, VerifyReport};
pub use digest::{compare, CompareReport, DigestMeta, RunDigest, DIGEST_SCHEMA};
pub use error::{ConfigError, CoordPhase, MigrateError, MigrationOutcome};
pub use policy::{choose_strategy, AssistAction, Decision, Strategy, WorkloadProbe};
pub use postcopy::{PostcopyConfig, PostcopyEngine, PostcopyReport};
pub use precopy::PrecopyEngine;
pub use report::{
    DowntimeBreakdown, EngineEvent, IterationStats, MigrationReport, StopReason, TrafficByClass,
};
pub use vmhost::MigratableVm;
