//! Per-migration SLA cost accounting.
//!
//! Voorsluys et al. ("Cost of Virtual Machine Live Migration in Clouds")
//! measured that a migrating VM hurts its tenants twice: a short, total
//! outage around the stop-and-copy, and a longer *brownout* — degraded
//! application throughput — for the whole live phase while the migration
//! steals CPU and network from the workload. [`SlaModel`] turns both into
//! a single comparable cost figure per migration, which is what the fleet
//! scheduler's policy comparison ranks on: an ordering policy that halves
//! aggregate downtime but doubles everyone's time-in-migration is not
//! obviously a win, and the cost model makes that trade explicit.
//!
//! Costs are plain `f64` arithmetic over the deterministic
//! [`MigrationReport`] durations, so same report ⇒ same cost, bit for bit.

use crate::report::MigrationReport;
use simkit::SimDuration;

/// Cost-rate model for one VM's service-level agreement.
#[derive(Debug, Clone, Copy)]
pub struct SlaModel {
    /// Cost per second of full workload outage (the paper's application
    /// downtime: safepoint + enforced GC + final update + stop-and-copy +
    /// resume).
    pub downtime_cost_per_sec: f64,
    /// Cost per second of degraded service during the live phase.
    pub brownout_cost_per_sec: f64,
    /// Fraction of service lost during the live phase (Voorsluys measured
    /// roughly a 10–20 % throughput dip while a migration is in flight).
    pub brownout_factor: f64,
    /// Downtime budget; exceeding it incurs the flat violation penalty.
    pub downtime_budget: SimDuration,
    /// Flat penalty charged once if workload downtime exceeds the budget.
    pub violation_penalty: f64,
}

impl SlaModel {
    /// A latency-sensitive service: expensive downtime, a tight 3-second
    /// budget, and a noticeable brownout charge.
    pub fn default_web() -> Self {
        Self {
            downtime_cost_per_sec: 10.0,
            brownout_cost_per_sec: 1.0,
            brownout_factor: 0.15,
            downtime_budget: SimDuration::from_secs(3),
            violation_penalty: 25.0,
        }
    }

    /// A throughput-oriented batch service: downtime is cheap, but
    /// long-running degradation still costs.
    pub fn default_batch() -> Self {
        Self {
            downtime_cost_per_sec: 1.0,
            brownout_cost_per_sec: 0.5,
            brownout_factor: 0.15,
            downtime_budget: SimDuration::from_secs(30),
            violation_penalty: 5.0,
        }
    }

    /// The cost of one finished migration under this model.
    pub fn cost(&self, report: &MigrationReport) -> SlaCost {
        let downtime = report.downtime.workload_downtime();
        // The live phase is everything before the workload went dark.
        let live = report.total_duration.saturating_sub(downtime);
        let downtime_cost = downtime.as_secs_f64() * self.downtime_cost_per_sec;
        let brownout_cost = live.as_secs_f64() * self.brownout_cost_per_sec * self.brownout_factor;
        let penalty = if downtime > self.downtime_budget {
            self.violation_penalty
        } else {
            0.0
        };
        SlaCost {
            downtime: downtime_cost,
            brownout: brownout_cost,
            penalty,
        }
    }
}

/// One migration's cost, broken down by source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaCost {
    /// Cost attributed to full workload outage.
    pub downtime: f64,
    /// Cost attributed to degraded throughput during the live phase.
    pub brownout: f64,
    /// Flat violation penalty, if the downtime budget was blown.
    pub penalty: f64,
}

impl SlaCost {
    /// A zero cost (no migration happened).
    pub const ZERO: SlaCost = SlaCost {
        downtime: 0.0,
        brownout: 0.0,
        penalty: 0.0,
    };

    /// Total cost across all sources.
    pub fn total(&self) -> f64 {
        self.downtime + self.brownout + self.penalty
    }

    /// Accumulates another migration's cost (fleet aggregation).
    pub fn add(&mut self, other: &SlaCost) {
        self.downtime += other.downtime;
        self.brownout += other.brownout;
        self.penalty += other.penalty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::destination::VerifyReport;
    use crate::error::MigrationOutcome;
    use crate::report::{DowntimeBreakdown, StopReason, TrafficByClass};
    use simkit::telemetry::Recorder;

    fn report(total_secs: u64, downtime_ms: u64) -> MigrationReport {
        MigrationReport {
            iterations: Vec::new(),
            total_duration: SimDuration::from_secs(total_secs),
            total_bytes: 0,
            downtime: DowntimeBreakdown {
                safepoint_wait: SimDuration::ZERO,
                enforced_gc: SimDuration::ZERO,
                final_update: SimDuration::ZERO,
                last_iteration: SimDuration::from_millis(downtime_ms),
                resume: SimDuration::ZERO,
            },
            cpu_time: SimDuration::ZERO,
            verification: VerifyReport::default(),
            traffic_by_class: TrafficByClass::default(),
            stop_reason: StopReason::DirtyThreshold,
            outcome: MigrationOutcome::Completed,
            timeline: simkit::trace::Trace::new(),
            cold: None,
            lkm: None,
            stragglers: 0,
            telemetry: Recorder::disabled().snapshot(),
        }
    }

    #[test]
    fn cost_splits_downtime_and_brownout() {
        let model = SlaModel {
            downtime_cost_per_sec: 10.0,
            brownout_cost_per_sec: 1.0,
            brownout_factor: 0.5,
            downtime_budget: SimDuration::from_secs(3),
            violation_penalty: 100.0,
        };
        // 10 s total, 2 s down -> 8 s live.
        let c = model.cost(&report(10, 2000));
        assert!((c.downtime - 20.0).abs() < 1e-9);
        assert!((c.brownout - 4.0).abs() < 1e-9);
        assert_eq!(c.penalty, 0.0);
        assert!((c.total() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn budget_violation_charges_penalty_once() {
        let model = SlaModel {
            downtime_budget: SimDuration::from_secs(1),
            ..SlaModel::default_web()
        };
        let c = model.cost(&report(10, 1500));
        assert_eq!(c.penalty, model.violation_penalty);
        let ok = model.cost(&report(10, 500));
        assert_eq!(ok.penalty, 0.0);
    }

    #[test]
    fn aggregation_adds_componentwise() {
        let model = SlaModel::default_batch();
        let mut acc = SlaCost::ZERO;
        acc.add(&model.cost(&report(10, 1000)));
        acc.add(&model.cost(&report(20, 2000)));
        let direct = model.cost(&report(10, 1000)).total() + model.cost(&report(20, 2000)).total();
        assert!((acc.total() - direct).abs() < 1e-9);
    }
}
