//! Migration engine configuration.
//!
//! [`MigrationConfig`] carries everything one run needs: link and quantum
//! parameters, the Xen stop policy, the coordination-timeout policy
//! ([`CoordPolicy`]), the fallback behaviour when coordination fails
//! ([`FallbackPolicy`]) and the fault plan driving deterministic fault
//! injection ([`simkit::FaultPlan`]). Construct it with the presets
//! ([`MigrationConfig::xen_default`], [`MigrationConfig::javmm_default`]) or
//! the validating [`MigrationConfig::builder`].

use crate::assist::ColdAssistConfig;
use crate::error::ConfigError;
use netsim::CompressionMethod;
use simkit::units::Bandwidth;
use simkit::{FaultPlan, SimDuration};

/// How the engine decides when to stop iterating (Xen's policy).
///
/// Xen's `xc_domain_save` enters the stop-and-copy phase when any of three
/// conditions holds: few enough dirty pages remain for a short last
/// iteration, the iteration cap is reached, or the traffic cap (a multiple
/// of the VM's RAM) is exceeded. The paper's derby run hits the iteration
/// cap after sending ~3.5× the VM size.
#[derive(Debug, Clone, Copy)]
pub struct StopPolicy {
    /// Maximum number of live (pre-copy) iterations; Xen defaults to 30.
    pub max_iterations: u32,
    /// Stop once total traffic exceeds this multiple of VM RAM.
    pub max_factor: f64,
    /// Enter the last iteration when fewer dirty pages than this remain.
    pub dirty_threshold_pages: u64,
}

impl Default for StopPolicy {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            max_factor: 3.0,
            dirty_threshold_pages: 50,
        }
    }
}

/// Per-page compression selection for the §6 extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionPolicy {
    /// Vanilla behaviour: raw pages.
    Off,
    /// Compress every transferred page with one method.
    Uniform(CompressionMethod),
    /// Choose the method per page class via the widened transfer map:
    /// highly compressible classes get the strong method, code-like pages
    /// the fast one.
    PerClass,
}

/// Coordination timeouts and retry policy for the daemon↔LKM handshakes.
///
/// `MigrationBegin` and `EnteringLastIter` are idempotent (the LKM gates on
/// sequence numbers), so the daemon retries them with exponential backoff;
/// when the retry budget is exhausted the [`FallbackPolicy`] decides between
/// degrading to vanilla pre-copy and failing the migration.
#[derive(Debug, Clone, Copy)]
pub struct CoordPolicy {
    /// How long to wait for the LKM's `BeginAck` before resending
    /// `MigrationBegin`.
    pub begin_ack_timeout: SimDuration,
    /// How long to wait for `ReadyToSuspend` before resending
    /// `EnteringLastIter`. Must exceed the LKM's own straggler timeout or
    /// the daemon gives up before the LKM's policy has a chance to act.
    pub ready_timeout: SimDuration,
    /// How many resends are attempted after the first timeout.
    pub retry_limit: u32,
    /// Each successive wait is the previous one times this factor (≥ 1).
    pub retry_backoff: f64,
    /// Treat a `ReadyToSuspend` reporting stragglers as a coordination
    /// failure and degrade, instead of trusting the LKM's forcible
    /// un-skipping of the stragglers' areas (the paper's behaviour).
    pub degrade_on_stragglers: bool,
}

impl Default for CoordPolicy {
    fn default() -> Self {
        Self {
            begin_ack_timeout: SimDuration::from_millis(50),
            ready_timeout: SimDuration::from_secs(15),
            retry_limit: 3,
            retry_backoff: 2.0,
            degrade_on_stragglers: false,
        }
    }
}

/// What to do when a coordination handshake exhausts its retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Abandon the assisted protocol and complete as vanilla Xen pre-copy
    /// (the run reports [`MigrationOutcome::DegradedVanilla`]).
    ///
    /// [`MigrationOutcome::DegradedVanilla`]: crate::error::MigrationOutcome::DegradedVanilla
    #[default]
    DegradeToVanilla,
    /// Abort the migration with [`MigrateError::CoordTimeout`].
    ///
    /// [`MigrateError::CoordTimeout`]: crate::error::MigrateError::CoordTimeout
    Fail,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Use the application-assisted protocol (requires an LKM in the guest).
    pub assisted: bool,
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// Co-simulation quantum.
    pub quantum: SimDuration,
    /// Stop policy.
    pub stop: StopPolicy,
    /// Device reconnection + activation time at the destination (the paper
    /// measures ≈170 ms).
    pub resume_time: SimDuration,
    /// §3.3.4 alternative: in the last iteration, consider every page
    /// dirtied at any point during migration (required for correctness when
    /// the LKM uses the re-walk final-update strategy).
    pub last_iter_considers_all_dirtied: bool,
    /// Compression extension.
    pub compression: CompressionPolicy,
    /// Daemon CPU cost per byte copied/sent.
    pub cpu_cost_per_byte: f64,
    /// Daemon CPU cost per page examined during scans.
    pub cpu_cost_per_page_scan: SimDuration,
    /// Worker threads for the sharded scan/classify pipeline
    /// ([`crate::scanpool`]). `1` (the default) keeps the pipeline inline on
    /// the engine thread; any value produces bit-identical reports — the
    /// knob only changes who does the classification work, never what it
    /// computes.
    pub scan_workers: usize,
    /// The cold-page assist (defer / delta actions). Off by default; the
    /// zero-config path is locked byte-identical by the inertness goldens.
    pub cold: ColdAssistConfig,
    /// Coordination timeouts and retries.
    pub coord: CoordPolicy,
    /// Behaviour when coordination fails for good.
    pub fallback: FallbackPolicy,
    /// Deterministic fault-injection plan. [`FaultPlan::none`] (the preset
    /// default) leaves every code path bit-for-bit identical to a build
    /// without the harness.
    pub faults: FaultPlan,
}

impl MigrationConfig {
    /// Vanilla Xen live migration over the paper's testbed link.
    pub fn xen_default() -> Self {
        Self {
            assisted: false,
            bandwidth: Bandwidth::gigabit_ethernet(),
            quantum: SimDuration::from_millis(1),
            stop: StopPolicy::default(),
            resume_time: SimDuration::from_millis(170),
            last_iter_considers_all_dirtied: false,
            compression: CompressionPolicy::Off,
            cpu_cost_per_byte: 1.1e-9,
            cpu_cost_per_page_scan: SimDuration::from_nanos(250),
            scan_workers: 1,
            cold: ColdAssistConfig::off(),
            coord: CoordPolicy::default(),
            fallback: FallbackPolicy::default(),
            faults: FaultPlan::none(),
        }
    }

    /// JAVMM: the assisted protocol on the same link.
    pub fn javmm_default() -> Self {
        Self {
            assisted: true,
            ..Self::xen_default()
        }
    }

    /// A validating builder seeded with the vanilla-Xen defaults.
    pub fn builder() -> MigrationConfigBuilder {
        MigrationConfigBuilder {
            config: Self::xen_default(),
        }
    }

    /// Checks the invariants the builder enforces; the engine calls this on
    /// entry so hand-mutated configs are rejected too.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.quantum.is_zero() {
            return Err(ConfigError::ZeroQuantum);
        }
        if self.bandwidth.bytes_per_sec() <= 0.0 {
            return Err(ConfigError::NonPositiveBandwidth);
        }
        if self.stop.max_iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if self.stop.max_factor <= 0.0 {
            return Err(ConfigError::NonPositiveTrafficFactor);
        }
        if self.coord.begin_ack_timeout.is_zero() || self.coord.ready_timeout.is_zero() {
            return Err(ConfigError::ZeroCoordTimeout);
        }
        if self.coord.retry_backoff < 1.0 {
            return Err(ConfigError::BackoffBelowOne);
        }
        if !self.faults.is_valid() {
            return Err(ConfigError::InvalidFaultPlan);
        }
        if self.scan_workers == 0 {
            return Err(ConfigError::ZeroScanWorkers);
        }
        self.cold.validate(self.assisted)?;
        Ok(())
    }
}

/// Builder for [`MigrationConfig`]; [`build`](Self::build) validates.
#[derive(Debug, Clone)]
pub struct MigrationConfigBuilder {
    config: MigrationConfig,
}

impl MigrationConfigBuilder {
    /// Enables or disables the assisted protocol.
    pub fn assisted(mut self, assisted: bool) -> Self {
        self.config.assisted = assisted;
        self
    }

    /// Sets the link bandwidth.
    pub fn bandwidth(mut self, bandwidth: Bandwidth) -> Self {
        self.config.bandwidth = bandwidth;
        self
    }

    /// Sets the co-simulation quantum.
    pub fn quantum(mut self, quantum: SimDuration) -> Self {
        self.config.quantum = quantum;
        self
    }

    /// Sets the stop policy.
    pub fn stop(mut self, stop: StopPolicy) -> Self {
        self.config.stop = stop;
        self
    }

    /// Sets the destination resume time.
    pub fn resume_time(mut self, resume_time: SimDuration) -> Self {
        self.config.resume_time = resume_time;
        self
    }

    /// Sets the §3.3.4 last-iteration strategy.
    pub fn last_iter_considers_all_dirtied(mut self, v: bool) -> Self {
        self.config.last_iter_considers_all_dirtied = v;
        self
    }

    /// Sets the compression policy.
    pub fn compression(mut self, compression: CompressionPolicy) -> Self {
        self.config.compression = compression;
        self
    }

    /// Sets the scan-pool worker count (0 is rejected at build time).
    pub fn scan_workers(mut self, workers: usize) -> Self {
        self.config.scan_workers = workers;
        self
    }

    /// Configures the cold-page assist (enabling it requires `assisted`).
    pub fn cold(mut self, cold: ColdAssistConfig) -> Self {
        self.config.cold = cold;
        self
    }

    /// Sets the coordination-timeout policy.
    pub fn coord(mut self, coord: CoordPolicy) -> Self {
        self.config.coord = coord;
        self
    }

    /// Sets the fallback policy.
    pub fn fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.config.fallback = fallback;
        self
    }

    /// Installs a fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<MigrationConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_xen() {
        let c = MigrationConfig::xen_default();
        assert!(!c.assisted);
        assert_eq!(c.stop.max_iterations, 30);
        assert_eq!(c.stop.max_factor, 3.0);
        assert_eq!(c.compression, CompressionPolicy::Off);
        assert!(!c.faults.is_active());
        assert_eq!(c.fallback, FallbackPolicy::DegradeToVanilla);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn javmm_only_differs_in_assistance() {
        let x = MigrationConfig::xen_default();
        let j = MigrationConfig::javmm_default();
        assert!(j.assisted);
        assert_eq!(j.stop.max_iterations, x.stop.max_iterations);
        assert_eq!(j.resume_time, x.resume_time);
    }

    #[test]
    fn builder_round_trips() {
        let c = MigrationConfig::builder()
            .assisted(true)
            .quantum(SimDuration::from_millis(2))
            .build()
            .unwrap();
        assert!(c.assisted);
        assert_eq!(c.quantum, SimDuration::from_millis(2));
    }

    #[test]
    fn builder_rejects_invalid() {
        assert_eq!(
            MigrationConfig::builder()
                .quantum(SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroQuantum
        );
        let bad_coord = CoordPolicy {
            retry_backoff: 0.5,
            ..CoordPolicy::default()
        };
        assert_eq!(
            MigrationConfig::builder()
                .coord(bad_coord)
                .build()
                .unwrap_err(),
            ConfigError::BackoffBelowOne
        );
        let plan = FaultPlan {
            link: Some(simkit::LinkDegrade {
                after: SimDuration::ZERO,
                factor: -1.0,
            }),
            ..FaultPlan::none()
        };
        assert_eq!(
            MigrationConfig::builder().faults(plan).build().unwrap_err(),
            ConfigError::InvalidFaultPlan
        );
        assert_eq!(
            MigrationConfig::builder()
                .scan_workers(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroScanWorkers
        );
    }

    #[test]
    fn scan_workers_default_is_inline() {
        assert_eq!(MigrationConfig::xen_default().scan_workers, 1);
        let c = MigrationConfig::builder().scan_workers(4).build().unwrap();
        assert_eq!(c.scan_workers, 4);
    }
}
