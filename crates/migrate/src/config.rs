//! Migration engine configuration.

use netsim::CompressionMethod;
use simkit::units::Bandwidth;
use simkit::SimDuration;

/// How the engine decides when to stop iterating (Xen's policy).
///
/// Xen's `xc_domain_save` enters the stop-and-copy phase when any of three
/// conditions holds: few enough dirty pages remain for a short last
/// iteration, the iteration cap is reached, or the traffic cap (a multiple
/// of the VM's RAM) is exceeded. The paper's derby run hits the iteration
/// cap after sending ~3.5× the VM size.
#[derive(Debug, Clone, Copy)]
pub struct StopPolicy {
    /// Maximum number of live (pre-copy) iterations; Xen defaults to 30.
    pub max_iterations: u32,
    /// Stop once total traffic exceeds this multiple of VM RAM.
    pub max_factor: f64,
    /// Enter the last iteration when fewer dirty pages than this remain.
    pub dirty_threshold_pages: u64,
}

impl Default for StopPolicy {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            max_factor: 3.0,
            dirty_threshold_pages: 50,
        }
    }
}

/// Per-page compression selection for the §6 extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionPolicy {
    /// Vanilla behaviour: raw pages.
    Off,
    /// Compress every transferred page with one method.
    Uniform(CompressionMethod),
    /// Choose the method per page class via the widened transfer map:
    /// highly compressible classes get the strong method, code-like pages
    /// the fast one.
    PerClass,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Use the application-assisted protocol (requires an LKM in the guest).
    pub assisted: bool,
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// Co-simulation quantum.
    pub quantum: SimDuration,
    /// Stop policy.
    pub stop: StopPolicy,
    /// Device reconnection + activation time at the destination (the paper
    /// measures ≈170 ms).
    pub resume_time: SimDuration,
    /// §3.3.4 alternative: in the last iteration, consider every page
    /// dirtied at any point during migration (required for correctness when
    /// the LKM uses the re-walk final-update strategy).
    pub last_iter_considers_all_dirtied: bool,
    /// Compression extension.
    pub compression: CompressionPolicy,
    /// Daemon CPU cost per byte copied/sent.
    pub cpu_cost_per_byte: f64,
    /// Daemon CPU cost per page examined during scans.
    pub cpu_cost_per_page_scan: SimDuration,
}

impl MigrationConfig {
    /// Vanilla Xen live migration over the paper's testbed link.
    pub fn xen_default() -> Self {
        Self {
            assisted: false,
            bandwidth: Bandwidth::gigabit_ethernet(),
            quantum: SimDuration::from_millis(1),
            stop: StopPolicy::default(),
            resume_time: SimDuration::from_millis(170),
            last_iter_considers_all_dirtied: false,
            compression: CompressionPolicy::Off,
            cpu_cost_per_byte: 1.1e-9,
            cpu_cost_per_page_scan: SimDuration::from_nanos(250),
        }
    }

    /// JAVMM: the assisted protocol on the same link.
    pub fn javmm_default() -> Self {
        Self {
            assisted: true,
            ..Self::xen_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_xen() {
        let c = MigrationConfig::xen_default();
        assert!(!c.assisted);
        assert_eq!(c.stop.max_iterations, 30);
        assert_eq!(c.stop.max_factor, 3.0);
        assert_eq!(c.compression, CompressionPolicy::Off);
    }

    #[test]
    fn javmm_only_differs_in_assistance() {
        let x = MigrationConfig::xen_default();
        let j = MigrationConfig::javmm_default();
        assert!(j.assisted);
        assert_eq!(j.stop.max_iterations, x.stop.max_iterations);
        assert_eq!(j.resume_time, x.resume_time);
    }
}
