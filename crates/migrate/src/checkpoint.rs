//! Continuous checkpoint replication with memory deprotection.
//!
//! The paper's closest relative is RemusDB (§2): a high-availability system
//! that continuously replicates VM checkpoints and explores *omitting
//! selective memory contents* from them based on application input — the
//! same insight as skip-over areas, applied to replication instead of
//! migration ("these contents also need no replication in high-availability
//! systems", §3.1).
//!
//! [`CheckpointEngine`] implements a Remus-style epoch loop: run the VM for
//! an epoch, stall it briefly to snapshot the pages dirtied during the
//! epoch, resume it while the snapshot streams to the backup. With
//! assistance enabled, pages in skip-over areas are *deprotected* — left
//! out of every checkpoint — so a Java VM's Young-generation churn stops
//! inflating the replication stream.

use crate::vmhost::MigratableVm;
use guestos::CoordPayload;
use netsim::{Capacity, Link, PAGE_HEADER_BYTES};
use simkit::units::Bandwidth;
use simkit::{SimClock, SimDuration};
use vmem::{Pfn, PAGE_SIZE};

/// Configuration of the checkpoint replicator.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Epoch length (Remus uses tens to hundreds of milliseconds).
    pub interval: SimDuration,
    /// Number of epochs to replicate.
    pub epochs: u32,
    /// Consult the guest LKM's transfer bitmap (memory deprotection).
    pub assisted: bool,
    /// Replication link bandwidth.
    pub bandwidth: Bandwidth,
    /// Co-simulation quantum while the VM runs.
    pub quantum: SimDuration,
    /// Copy cost per snapshotted page (the stop-and-copy-to-buffer stall).
    pub snapshot_cost_per_page: SimDuration,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            interval: SimDuration::from_millis(200),
            epochs: 50,
            assisted: false,
            bandwidth: Bandwidth::gigabit_ethernet(),
            quantum: SimDuration::from_millis(1),
            snapshot_cost_per_page: SimDuration::from_nanos(350),
        }
    }
}

/// What one epoch did.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Pages captured into the checkpoint.
    pub pages: u64,
    /// Pages left out thanks to deprotection.
    pub pages_deprotected: u64,
    /// Bytes put on the replication stream.
    pub bytes: u64,
    /// VM stall while the snapshot was taken.
    pub stall: SimDuration,
    /// Extra time the epoch stretched because the link had backlog.
    pub backlog_wait: SimDuration,
}

/// Aggregate replication report.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Total wall time.
    pub total_duration: SimDuration,
    /// Total replication traffic.
    pub total_bytes: u64,
    /// Sum of VM stalls.
    pub total_stall: SimDuration,
}

impl CheckpointReport {
    /// Mean checkpoint size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.total_bytes as f64 / self.epochs.len() as f64
        }
    }
}

/// The Remus-style checkpoint replicator.
#[derive(Debug, Clone)]
pub struct CheckpointEngine {
    config: CheckpointConfig,
}

impl CheckpointEngine {
    /// Creates an engine.
    pub fn new(config: CheckpointConfig) -> Self {
        Self { config }
    }

    /// Replicates `vm` for the configured number of epochs over a
    /// dedicated replication NIC at the configured bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if assistance is requested but the guest has no LKM.
    pub fn replicate(&self, vm: &mut dyn MigratableVm, clock: &mut SimClock) -> CheckpointReport {
        self.replicate_over(vm, clock, &mut Link::new(self.config.bandwidth))
    }

    /// Replicates `vm`, metering the replication stream through `pipe` —
    /// any [`Capacity`], so a checkpoint stream can share an uplink with
    /// live migrations instead of assuming a private NIC. The pipe's
    /// current rate decides how much backlog one epoch absorbs and how
    /// long the guest throttles when the stream falls behind.
    ///
    /// # Panics
    ///
    /// Panics if assistance is requested but the guest has no LKM.
    pub fn replicate_over(
        &self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
        pipe: &mut dyn Capacity,
    ) -> CheckpointReport {
        let t0 = clock.now();
        let port = if self.config.assisted {
            Some(
                vm.daemon_port()
                    .expect("assisted checkpointing requires a loaded LKM"),
            )
        } else {
            None
        };

        vm.kernel_mut().memory_mut().dirty_log_mut().enable();
        if let Some(port) = &port {
            // Protection begins: the LKM queries applications and performs
            // the first bitmap update, as for a migration.
            port.send(clock.now(), CoordPayload::MigrationBegin);
        }

        let mut epochs = Vec::with_capacity(self.config.epochs as usize);
        let mut backlog_bytes = 0u64;

        for _ in 0..self.config.epochs {
            // Run the epoch.
            let mut ran = SimDuration::ZERO;
            while ran < self.config.interval {
                let dt = self.config.quantum.min(self.config.interval - ran);
                vm.advance_guest(clock.now(), dt);
                clock.advance(dt);
                ran += dt;
            }

            // Snapshot: brief stall proportional to the pages captured.
            let snapshot = vm
                .kernel_mut()
                .memory_mut()
                .dirty_log_mut()
                .read_and_clear();
            let mut pages = 0u64;
            let mut deprotected = 0u64;
            for pfn in snapshot.iter_set() {
                if self.skip(vm, pfn) {
                    deprotected += 1;
                } else {
                    pages += 1;
                }
            }
            let stall = self.config.snapshot_cost_per_page * pages;
            clock.advance(stall);

            // Stream asynchronously: backlog carries into the next epoch;
            // if it exceeds one epoch of link capacity, the VM must wait
            // (Remus throttles the guest when the link falls behind).
            let bytes = pages * (PAGE_SIZE + PAGE_HEADER_BYTES);
            backlog_bytes += bytes;
            pipe.record_send(bytes);
            let capacity = pipe.rate().bytes_in(self.config.interval);
            let backlog_wait = if backlog_bytes > capacity {
                let excess = backlog_bytes - capacity;
                backlog_bytes = capacity;
                let wait = pipe.time_to_send(excess);
                clock.advance(wait);
                wait
            } else {
                backlog_bytes = backlog_bytes.saturating_sub(capacity);
                SimDuration::ZERO
            };

            epochs.push(EpochStats {
                pages,
                pages_deprotected: deprotected,
                bytes,
                stall,
                backlog_wait,
            });
        }

        vm.kernel_mut().memory_mut().dirty_log_mut().disable();
        let total_bytes = epochs.iter().map(|e| e.bytes).sum();
        let total_stall = epochs.iter().map(|e| e.stall).sum();
        CheckpointReport {
            epochs,
            total_duration: clock.now().saturating_since(t0),
            total_bytes,
            total_stall,
        }
    }

    fn skip(&self, vm: &dyn MigratableVm, pfn: Pfn) -> bool {
        if !self.config.assisted {
            return false;
        }
        match vm.kernel().lkm() {
            Some(lkm) => !lkm.should_transfer(pfn),
            None => false,
        }
    }
}
