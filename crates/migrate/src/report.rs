//! Migration reports: per-iteration statistics and end-to-end metrics.

use crate::assist::ColdReport;
use crate::destination::VerifyReport;
use crate::error::MigrationOutcome;
use guestos::lkm::LkmStats;
use simkit::trace::Trace;
use simkit::{FaultKind, RunTelemetry, SimDuration, SimTime};
use vmem::{PageClass, PAGE_SIZE};

/// Why the engine left the live pre-copy phase (Xen's three exits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration cap was reached (Figure 1's forced stop).
    MaxIterations,
    /// Total traffic exceeded `max_factor` x RAM.
    TrafficCap,
    /// Few enough transferable dirty pages remained (convergence).
    DirtyThreshold,
}

/// A timestamped engine event (causality of the Figure 4 workflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// Migration invoked; log-dirty mode enabled.
    Begin,
    /// A live iteration started.
    IterationStart {
        /// 1-based iteration index.
        index: u32,
    },
    /// The stop policy fired.
    StopCondition(StopReason),
    /// `EnteringLastIter` was sent to the LKM (assisted only).
    NotifiedLkm,
    /// `ReadyToSuspend` arrived from the LKM (assisted only).
    ReadyReceived,
    /// A coordination retry: the named handshake message was resent.
    CoordRetry {
        /// 1-based resend attempt.
        attempt: u32,
    },
    /// The assisted protocol was abandoned; the run continues as vanilla
    /// pre-copy (the triggering fault is recorded).
    Degraded(FaultKind),
    /// The VM was paused for the stop-and-copy.
    Paused,
    /// The VM was activated at the destination.
    Resumed,
}

/// Wire bytes broken down by the content class of the pages sent.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrafficByClass {
    bytes: [u64; PageClass::ALL.len()],
}

impl TrafficByClass {
    /// Adds `bytes` of traffic for `class`.
    pub fn add(&mut self, class: PageClass, bytes: u64) {
        self.bytes[class.index()] += bytes;
    }

    /// Returns the bytes sent for `class`.
    pub fn get(&self, class: PageClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Iterates `(class, bytes)` pairs with non-zero traffic, largest first.
    pub fn sorted(&self) -> Vec<(PageClass, u64)> {
        let mut v: Vec<(PageClass, u64)> = PageClass::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, b)| b > 0)
            .collect();
        v.sort_by_key(|&(_, b)| core::cmp::Reverse(b));
        v
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

/// What one pre-copy iteration did (one box of the paper's Figure 8).
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// 1-based iteration index; the last (stop-and-copy) iteration carries
    /// the highest index.
    pub index: u32,
    /// Iteration start time.
    pub start: SimTime,
    /// Iteration duration.
    pub duration: SimDuration,
    /// Pages in the to-send set at iteration start.
    pub pages_to_send: u64,
    /// Pages actually transferred.
    pub pages_sent: u64,
    /// Bytes put on the wire (page data + headers, after compression).
    pub bytes_sent: u64,
    /// Pages skipped because they were re-dirtied during the iteration
    /// (Xen's skip heuristic).
    pub pages_skipped_dirty: u64,
    /// Pages skipped because their transfer bit was cleared (skip-over
    /// areas; zero for vanilla migration).
    pub pages_skipped_transfer: u64,
    /// Pages newly dirtied while this iteration ran.
    pub pages_dirtied_during: u64,
}

impl IterationStats {
    /// Achieved transfer rate in pages/second.
    pub fn transfer_rate_pps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.pages_sent as f64 / secs
        } else {
            0.0
        }
    }

    /// Memory dirtying rate in pages/second during this iteration.
    pub fn dirtying_rate_pps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.pages_dirtied_during as f64 / secs
        } else {
            0.0
        }
    }

    /// Bytes of memory processed, by disposition: (transferred,
    /// skipped-already-dirtied, skipped-by-transfer-bitmap) — the three
    /// stackings of Figure 9.
    pub fn processed_bytes(&self) -> (u64, u64, u64) {
        (
            self.pages_sent * PAGE_SIZE,
            self.pages_skipped_dirty * PAGE_SIZE,
            self.pages_skipped_transfer * PAGE_SIZE,
        )
    }
}

/// Where the workload-perceived downtime went.
#[derive(Debug, Clone, Copy, Default)]
pub struct DowntimeBreakdown {
    /// Time for Java threads to reach the safepoint (not part of downtime —
    /// the workload keeps running — reported for completeness).
    pub safepoint_wait: SimDuration,
    /// The enforced minor GC (JAVMM only).
    pub enforced_gc: SimDuration,
    /// The final transfer-bitmap update (JAVMM only; paper: ≤300 µs).
    pub final_update: SimDuration,
    /// The stop-and-copy transfer.
    pub last_iteration: SimDuration,
    /// Device reconnection and activation at the destination.
    pub resume: SimDuration,
}

impl DowntimeBreakdown {
    /// Workload-perceived downtime: enforced GC + final update +
    /// stop-and-copy + resumption (the paper's Figure 10c metric).
    pub fn workload_downtime(&self) -> SimDuration {
        self.enforced_gc + self.final_update + self.last_iteration + self.resume
    }

    /// VM downtime: pause-to-resume (stop-and-copy + resumption).
    pub fn vm_downtime(&self) -> SimDuration {
        self.last_iteration + self.resume
    }
}

/// The complete outcome of one migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Per-iteration statistics, including the final stop-and-copy.
    pub iterations: Vec<IterationStats>,
    /// Wall-clock time from invocation to VM activation at the destination.
    pub total_duration: SimDuration,
    /// Total network traffic (bytes on the wire).
    pub total_bytes: u64,
    /// Downtime breakdown.
    pub downtime: DowntimeBreakdown,
    /// Migration daemon CPU time consumed.
    pub cpu_time: SimDuration,
    /// Source/destination memory comparison at pause time.
    pub verification: VerifyReport,
    /// Wire traffic broken down by page content class.
    pub traffic_by_class: TrafficByClass,
    /// Why live iteration ended.
    pub stop_reason: StopReason,
    /// Whether the requested protocol completed or degraded to vanilla
    /// pre-copy mid-run (with the triggering fault).
    pub outcome: MigrationOutcome,
    /// Timestamped engine events.
    pub timeline: Trace<EngineEvent>,
    /// What the cold-page assist did. `None` unless the run was configured
    /// with [`crate::assist::ColdAssistConfig`] enabled — the digest only
    /// emits its cold section (and bumps its schema) when this is present.
    pub cold: Option<ColdReport>,
    /// LKM statistics (assisted runs only).
    pub lkm: Option<LkmStats>,
    /// Stragglers forcibly un-skipped (assisted runs only).
    pub stragglers: u32,
    /// Cross-layer flight-recorder snapshot. Empty (with `enabled ==
    /// false`) unless the run was started through
    /// [`crate::precopy::PrecopyEngine::migrate_recorded`].
    pub telemetry: RunTelemetry,
}

impl MigrationReport {
    /// Number of iterations performed (including the stop-and-copy).
    pub fn iteration_count(&self) -> u32 {
        self.iterations.len() as u32
    }

    /// The stop-and-copy iteration.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (never produced by the engine).
    pub fn last_iteration(&self) -> &IterationStats {
        self.iterations.last().expect("report has iterations")
    }

    /// Total pages transferred.
    pub fn pages_sent(&self) -> u64 {
        self.iterations.iter().map(|i| i.pages_sent).sum()
    }

    /// Total pages skipped because of skip-over areas.
    pub fn pages_skipped_transfer(&self) -> u64 {
        self.iterations
            .iter()
            .map(|i| i.pages_skipped_transfer)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_processed() {
        let it = IterationStats {
            index: 1,
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(2),
            pages_to_send: 1000,
            pages_sent: 800,
            bytes_sent: 800 * PAGE_SIZE,
            pages_skipped_dirty: 150,
            pages_skipped_transfer: 50,
            pages_dirtied_during: 400,
        };
        assert_eq!(it.transfer_rate_pps(), 400.0);
        assert_eq!(it.dirtying_rate_pps(), 200.0);
        let (t, d, s) = it.processed_bytes();
        assert_eq!(t, 800 * PAGE_SIZE);
        assert_eq!(d, 150 * PAGE_SIZE);
        assert_eq!(s, 50 * PAGE_SIZE);
    }

    #[test]
    fn downtime_composition() {
        let d = DowntimeBreakdown {
            safepoint_wait: SimDuration::from_millis(700),
            enforced_gc: SimDuration::from_millis(900),
            final_update: SimDuration::from_micros(300),
            last_iteration: SimDuration::from_millis(100),
            resume: SimDuration::from_millis(170),
        };
        assert_eq!(d.vm_downtime(), SimDuration::from_millis(270));
        // Safepoint wait is excluded: the workload still runs.
        assert_eq!(
            d.workload_downtime(),
            SimDuration::from_micros(900_000 + 300 + 100_000 + 170_000)
        );
    }
}
