//! A post-copy migration baseline.
//!
//! The paper's related work (§2) contrasts pre-copy with post-copy
//! [Hines & Gopalan; Hirofuchi et al.]: "post-copy migration skips over all
//! memory pages and removes the pre-copy stage. To run the VM in the
//! destination, pages are fetched from the source, incurring performance
//! penalties." This module implements that baseline so the trade-off is
//! measurable against vanilla pre-copy and JAVMM:
//!
//! * **switchover**: the VM pauses only to move execution state — downtime
//!   is minimal and independent of memory size;
//! * **demand fetch**: after resumption, the first touch of every
//!   not-yet-present page stalls the guest for a network round trip plus
//!   the page transfer;
//! * **background pre-paging**: the source pushes the remaining pages in
//!   address order with the leftover link capacity, so the degradation
//!   window is bounded.
//!
//! Because the simulation observes guest *writes*, demand faults are
//! charged for written pages; read-only touches are covered by the
//! background push. This under-counts read stalls slightly, which is
//! conservative in post-copy's favour — and it still loses on degradation,
//! which is the paper's point.

use crate::vmhost::MigratableVm;
use netsim::{Capacity, Link, PAGE_HEADER_BYTES};
use simkit::units::Bandwidth;
use simkit::{SimClock, SimDuration};
use vmem::{Bitmap, Pfn, PAGE_SIZE};

/// Configuration of the post-copy engine.
#[derive(Debug, Clone)]
pub struct PostcopyConfig {
    /// Link bandwidth.
    pub bandwidth: Bandwidth,
    /// Network round-trip time charged per demand fetch.
    pub fetch_rtt: SimDuration,
    /// Execution-state switchover time (the only downtime).
    pub switchover: SimDuration,
    /// Co-simulation quantum.
    pub quantum: SimDuration,
}

impl Default for PostcopyConfig {
    fn default() -> Self {
        Self {
            bandwidth: Bandwidth::gigabit_ethernet(),
            fetch_rtt: SimDuration::from_micros(200),
            switchover: SimDuration::from_millis(170),
            quantum: SimDuration::from_millis(1),
        }
    }
}

/// Outcome of a post-copy migration.
#[derive(Debug, Clone)]
pub struct PostcopyReport {
    /// Time from invocation until every page is present at the destination.
    pub total_duration: SimDuration,
    /// VM downtime (switchover only).
    pub downtime: SimDuration,
    /// Total bytes moved (demand fetches + background push).
    pub total_bytes: u64,
    /// Pages fetched on demand (each stalled the guest).
    pub demand_fetches: u64,
    /// Guest time lost to demand-fetch stalls.
    pub stall_time: SimDuration,
    /// How long the degradation window lasted (resume → all pages present).
    pub degradation_window: SimDuration,
}

/// The post-copy engine.
#[derive(Debug, Clone)]
pub struct PostcopyEngine {
    config: PostcopyConfig,
}

impl PostcopyEngine {
    /// Creates an engine.
    pub fn new(config: PostcopyConfig) -> Self {
        Self { config }
    }

    /// Migrates `vm` post-copy style over a dedicated NIC at the
    /// configured bandwidth.
    pub fn migrate(&self, vm: &mut dyn MigratableVm, clock: &mut SimClock) -> PostcopyReport {
        self.migrate_over(vm, clock, &mut Link::new(self.config.bandwidth))
    }

    /// Migrates `vm` post-copy style, metering every transfer through
    /// `pipe` — a bare [`Link`], a fair-share [`netsim::SharedUplink`]
    /// subscription, or any other [`Capacity`]. The pipe's current rate
    /// governs demand-fetch stalls and the background-push budget alike.
    pub fn migrate_over(
        &self,
        vm: &mut dyn MigratableVm,
        clock: &mut SimClock,
        pipe: &mut dyn Capacity,
    ) -> PostcopyReport {
        let t0 = clock.now();
        let npages = vm.kernel().memory().page_count();

        // Switchover: the only pause the workload sees.
        clock.advance(self.config.switchover);
        let t_resumed = clock.now();

        // Track page presence at the destination. Pristine pages need no
        // transfer (zero-filled on both sides).
        let mut present = Bitmap::new(npages);
        let mut remaining = 0u64;
        for p in 0..npages {
            if vm.kernel().memory().page(Pfn(p)).is_pristine() {
                present.set(Pfn(p));
            } else {
                remaining += 1;
            }
        }

        // Demand faults are observed through the dirty log: each quantum's
        // newly written pages that were not yet present stalled the guest.
        vm.kernel_mut().memory_mut().dirty_log_mut().enable();
        let mut push_cursor = 0u64;
        let mut total_bytes = 0u64;
        let mut demand_fetches = 0u64;
        let mut stall_time = SimDuration::ZERO;

        while remaining > 0 {
            // Run the guest for a quantum.
            vm.advance_guest(clock.now(), self.config.quantum);
            clock.advance(self.config.quantum);

            // Demand-fetch every page the guest touched that is missing.
            let touched = vm
                .kernel_mut()
                .memory_mut()
                .dirty_log_mut()
                .read_and_clear();
            let mut budget = pipe.budget(self.config.quantum) as i64;
            for pfn in touched.iter_set() {
                if present.set(pfn) {
                    remaining -= 1;
                    demand_fetches += 1;
                    let wire = PAGE_SIZE + PAGE_HEADER_BYTES;
                    total_bytes += wire;
                    pipe.record_send(wire);
                    budget -= wire as i64;
                    // The guest stalled for the round trip + transfer.
                    let stall = self.config.fetch_rtt + pipe.time_to_send(wire);
                    stall_time += stall;
                    clock.advance(stall);
                }
            }

            // Background pre-paging with the leftover capacity.
            while budget > 0 && remaining > 0 {
                let Some(pfn) = next_missing(&present, &mut push_cursor, npages) else {
                    break;
                };
                present.set(pfn);
                remaining -= 1;
                let wire = PAGE_SIZE + PAGE_HEADER_BYTES;
                total_bytes += wire;
                pipe.record_send(wire);
                budget -= wire as i64;
            }
        }
        vm.kernel_mut().memory_mut().dirty_log_mut().disable();

        PostcopyReport {
            total_duration: clock.now().saturating_since(t0),
            downtime: self.config.switchover,
            total_bytes,
            demand_fetches,
            stall_time,
            degradation_window: clock.now().saturating_since(t_resumed),
        }
    }
}

/// Finds the next page the background push has not yet sent.
fn next_missing(present: &Bitmap, cursor: &mut u64, npages: u64) -> Option<Pfn> {
    while *cursor < npages {
        let pfn = Pfn(*cursor);
        *cursor += 1;
        if !present.get(pfn) {
            return Some(pfn);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use guestos::kernel::{GuestKernel, GuestOsConfig};
    use guestos::lkm::DaemonPort;
    use guestos::process::Pid;
    use simkit::units::MIB;
    use simkit::{DetRng, SimTime};
    use vmem::{PageClass, VaRange, Vaddr, VmSpec};

    struct TouchyVm {
        kernel: GuestKernel,
        pid: Pid,
        region: VaRange,
        cursor: u64,
        pages_per_quantum: u64,
    }

    impl TouchyVm {
        fn new(pages_per_quantum: u64) -> Self {
            let mut kernel = GuestKernel::boot(
                GuestOsConfig {
                    spec: VmSpec::new(64 * MIB, 1),
                    kernel_bytes: 4 * MIB,
                    pagecache_bytes: 4 * MIB,
                    kernel_dirty_rate: 0.0,
                    pagecache_dirty_rate: 0.0,
                },
                DetRng::new(1),
            );
            let pid = kernel.spawn("touchy");
            let region = kernel
                .alloc_map(pid, Vaddr(0x10_0000_0000), 2048, PageClass::Anon)
                .expect("fits");
            kernel.write_range(pid, region, PageClass::Anon);
            Self {
                kernel,
                pid,
                region,
                cursor: 0,
                pages_per_quantum,
            }
        }
    }

    impl MigratableVm for TouchyVm {
        fn kernel(&self) -> &GuestKernel {
            &self.kernel
        }

        fn kernel_mut(&mut self) -> &mut GuestKernel {
            &mut self.kernel
        }

        fn advance_guest(&mut self, _now: SimTime, _dt: SimDuration) {
            let pages = self.region.page_count();
            for _ in 0..self.pages_per_quantum {
                let va = Vaddr(self.region.start().0 + (self.cursor % pages) * PAGE_SIZE);
                self.kernel
                    .write_range(self.pid, VaRange::from_len(va, 1), PageClass::Anon);
                self.cursor += 1;
            }
        }

        fn ops_completed(&self) -> u64 {
            self.cursor
        }

        fn daemon_port(&self) -> Option<DaemonPort> {
            None
        }

        fn enforced_gc_duration(&self) -> Option<SimDuration> {
            None
        }
    }

    #[test]
    fn downtime_is_switchover_only() {
        let mut vm = TouchyVm::new(4);
        let mut clock = SimClock::new();
        let report = PostcopyEngine::new(PostcopyConfig::default()).migrate(&mut vm, &mut clock);
        assert_eq!(report.downtime, SimDuration::from_millis(170));
        assert!(report.total_duration > report.downtime);
    }

    #[test]
    fn every_written_page_arrives_exactly_once() {
        let mut vm = TouchyVm::new(8);
        let mut clock = SimClock::new();
        let report = PostcopyEngine::new(PostcopyConfig::default()).migrate(&mut vm, &mut clock);
        // Boot content (8 MiB) + region (8 MiB) + whatever the guest wrote
        // during the window: each page is moved exactly once.
        let moved_pages = report.total_bytes / (PAGE_SIZE + PAGE_HEADER_BYTES);
        let content_pages = 16 * MIB / PAGE_SIZE;
        assert_eq!(moved_pages, content_pages);
    }

    #[test]
    fn hot_guests_stall_more() {
        let run = |rate: u64| {
            let mut vm = TouchyVm::new(rate);
            let mut clock = SimClock::new();
            PostcopyEngine::new(PostcopyConfig::default()).migrate(&mut vm, &mut clock)
        };
        let quiet = run(1);
        let hot = run(16);
        assert!(hot.demand_fetches > quiet.demand_fetches);
        assert!(hot.stall_time > quiet.stall_time);
    }
}
