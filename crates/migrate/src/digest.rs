//! Post-run digests: schema-versioned JSON summaries and a cross-run
//! regression gate.
//!
//! A [`RunDigest`] folds a [`MigrationReport`] (including its flight
//! recorder snapshot) into a compact, byte-deterministic JSON document:
//! phase and downtime attribution, skipped-vs-sent page accounting,
//! histogram quantiles, scan throughput, fault attribution for degraded
//! outcomes, and a findings list of rule-based anomalies. Digests are
//! meant to be committed as baselines and diffed across runs: [`compare`]
//! parses two digest documents (with the built-in minimal JSON reader — no
//! external dependency) and applies per-metric regression thresholds.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simkit::telemetry::export::escape_json;
use simkit::Subsystem;

use crate::report::{MigrationReport, StopReason};
use crate::MigrationOutcome;

/// Schema identifier embedded in (and required of) every digest document.
/// v2 added the `series` section (workload-observatory sample rings).
pub const DIGEST_SCHEMA: &str = "javmm-run-digest-v2";

/// Schema identifier of run digests carrying a `cold` section. Emitted
/// *only* when the run's report has a cold-assist summary, so every
/// digest produced with the subsystem disabled stays byte-identical to
/// its committed v2 baseline. [`compare`] accepts both ids.
pub const DIGEST_SCHEMA_V3: &str = "javmm-run-digest-v3";

/// Enforced-GC pauses longer than this are flagged as a `gc_overrun`
/// finding (the paper's enforced minor GC completes well under a second).
const GC_OVERRUN_BUDGET_NS: u64 = 2_000_000_000;

/// Identity of the run a digest describes; supplied by the caller because
/// the report itself does not know its scenario name or seed.
#[derive(Debug, Clone)]
pub struct DigestMeta {
    /// Stable scenario name (used as the compare key).
    pub name: String,
    /// Workload label (e.g. `crypto`, `derby`).
    pub workload: String,
    /// Whether the run requested application assistance.
    pub assisted: bool,
    /// Root seed of the run.
    pub seed: u64,
}

/// Summary of one histogram family carried into the digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistDigest {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Median (nearest-rank over log buckets).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Summary of one sample series (a bounded telemetry ring) carried into
/// the digest: the retained window's shape, not its raw samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDigest {
    /// Samples retained in the ring.
    pub count: u64,
    /// Samples evicted by the ring bound.
    pub dropped: u64,
    /// Sampling cadence in nanoseconds (0 for event-driven series).
    pub cadence_ns: u64,
    /// Mean of the retained samples.
    pub mean: f64,
    /// Most recent sample.
    pub last: f64,
    /// Median of the retained samples (nearest rank).
    pub p50: f64,
    /// 95th percentile of the retained samples.
    pub p95: f64,
}

/// The cold-assist section of a v3 digest: what the defer and delta
/// actions did, straight off the report's [`crate::assist::ColdReport`]
/// plus its derived ratios (frozen into the document so gates read them
/// without re-deriving).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdDigest {
    /// Pages ever classified cold.
    pub pages: u64,
    /// Pages split out of hot snapshots into the bulk stream.
    pub deferred_pages: u64,
    /// Deferred pages actually shipped by the bulk stream.
    pub deferred_sent_pages: u64,
    /// Wire bytes the bulk stream shipped.
    pub deferred_sent_bytes: u64,
    /// Deferred pages still pending when the VM paused.
    pub pending_at_pause: u64,
    /// Delta-cache hits that produced a delta cheaper than the full page.
    pub delta_hits: u64,
    /// Delta-cache misses (first sends).
    pub delta_misses: u64,
    /// Hits whose encoding fell back to the full page.
    pub delta_fallbacks: u64,
    /// Cache evictions forced by the capacity bound.
    pub delta_overflows: u64,
    /// Wire bytes of the pages sent as deltas.
    pub delta_wire_bytes: u64,
    /// What those same pages would have cost sent whole.
    pub delta_full_bytes: u64,
    /// `1 - wire/full` over delta-sent pages.
    pub delta_saved_bytes_ratio: f64,
    /// Consults finding a prior version, over all consults.
    pub delta_cache_hit_rate: f64,
}

/// A rule-based anomaly surfaced by the digest analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `precopy_not_converging`).
    pub rule: &'static str,
    /// Human-readable explanation with the triggering numbers.
    pub detail: String,
}

/// The folded outcome of one migration run.
#[derive(Debug, Clone)]
pub struct RunDigest {
    /// Run identity.
    pub meta: DigestMeta,
    /// `completed` or `degraded_vanilla`.
    pub outcome_kind: &'static str,
    /// Triggering fault name for degraded runs, `none` otherwise.
    pub fault: &'static str,
    /// Why live iteration stopped.
    pub stop_reason: &'static str,
    /// Wall-clock migration duration in nanoseconds.
    pub total_duration_ns: u64,
    /// Bytes put on the wire.
    pub total_bytes: u64,
    /// Migration daemon CPU time in nanoseconds.
    pub cpu_time_ns: u64,
    /// Iterations performed, including the stop-and-copy.
    pub iterations: u32,
    /// Assistants forcibly un-skipped by the LKM.
    pub stragglers: u32,
    /// Pages transferred.
    pub pages_sent: u64,
    /// Pages skipped on transfer-bit grounds (skip-over areas).
    pub pages_skipped_transfer: u64,
    /// Pages skipped because they were re-dirtied mid-iteration.
    pub pages_skipped_dirty: u64,
    /// Workload-perceived downtime in nanoseconds.
    pub downtime_workload_ns: u64,
    /// VM pause-to-resume downtime in nanoseconds.
    pub downtime_vm_ns: u64,
    /// Safepoint-reach time (not part of downtime).
    pub safepoint_wait_ns: u64,
    /// Enforced minor GC share of downtime.
    pub enforced_gc_ns: u64,
    /// Final transfer-bitmap update share of downtime.
    pub final_update_ns: u64,
    /// Stop-and-copy share of downtime.
    pub last_iteration_ns: u64,
    /// Destination resume share of downtime.
    pub resume_ns: u64,
    /// Pages examined by the pre-copy scanner (sends and skips alike).
    pub pages_scanned: u64,
    /// CPU charged to scanning, in nanoseconds.
    pub scan_cpu_ns: u64,
    /// Scan throughput: pages per CPU-second (0 when nothing was scanned).
    pub scan_pages_per_cpu_sec: f64,
    /// Histogram summaries keyed `subsystem/name`, sorted.
    pub histograms: BTreeMap<String, HistDigest>,
    /// Sample-series summaries keyed `subsystem/name`, sorted.
    pub series: BTreeMap<String, SeriesDigest>,
    /// Counter values keyed `subsystem/name`, sorted.
    pub counters: BTreeMap<String, u64>,
    /// Cold-assist summary; `None` (and absent from the JSON, keeping the
    /// v2 schema) unless the run had the subsystem enabled.
    pub cold: Option<ColdDigest>,
    /// Rule-based anomalies, in fixed rule order.
    pub findings: Vec<Finding>,
}

fn stop_reason_name(r: StopReason) -> &'static str {
    match r {
        StopReason::MaxIterations => "max_iterations",
        StopReason::TrafficCap => "traffic_cap",
        StopReason::DirtyThreshold => "dirty_threshold",
    }
}

impl RunDigest {
    /// Folds `report` (and its telemetry snapshot) into a digest.
    pub fn from_report(meta: DigestMeta, report: &MigrationReport) -> Self {
        let (outcome_kind, fault) = match report.outcome {
            MigrationOutcome::Completed => ("completed", "none"),
            MigrationOutcome::DegradedVanilla { fault } => ("degraded_vanilla", fault.name()),
        };
        let t = &report.telemetry;
        let pages_scanned = t.counter(Subsystem::Engine, "pages_scanned").unwrap_or(0);
        let scan_cpu_ns = t.counter(Subsystem::Engine, "scan_cpu_ns").unwrap_or(0);
        let scan_pages_per_cpu_sec = if scan_cpu_ns > 0 {
            pages_scanned as f64 * 1e9 / scan_cpu_ns as f64
        } else {
            0.0
        };
        let histograms = t
            .hists
            .iter()
            .map(|h| {
                (
                    format!("{}/{}", h.subsystem, h.name),
                    HistDigest {
                        count: h.hist.count(),
                        min: h.hist.min(),
                        max: h.hist.max(),
                        sum: h.hist.sum(),
                        p50: h.hist.quantile(0.50),
                        p95: h.hist.quantile(0.95),
                        p99: h.hist.quantile(0.99),
                    },
                )
            })
            .collect();
        let series = t
            .series
            .iter()
            .map(|s| {
                (
                    format!("{}/{}", s.subsystem, s.name),
                    SeriesDigest {
                        count: s.series.len() as u64,
                        dropped: s.series.dropped(),
                        cadence_ns: s.series.cadence_ns(),
                        mean: s.series.mean(),
                        last: s.series.last().unwrap_or(f64::NAN),
                        p50: s.series.quantile(0.50),
                        p95: s.series.quantile(0.95),
                    },
                )
            })
            .collect();
        let counters = t
            .counters
            .iter()
            .map(|c| (format!("{}/{}", c.subsystem, c.name), c.value))
            .collect();

        let mut digest = Self {
            outcome_kind,
            fault,
            stop_reason: stop_reason_name(report.stop_reason),
            total_duration_ns: report.total_duration.as_nanos(),
            total_bytes: report.total_bytes,
            cpu_time_ns: report.cpu_time.as_nanos(),
            iterations: report.iteration_count(),
            stragglers: report.stragglers,
            pages_sent: report.pages_sent(),
            pages_skipped_transfer: report.pages_skipped_transfer(),
            pages_skipped_dirty: report
                .iterations
                .iter()
                .map(|i| i.pages_skipped_dirty)
                .sum(),
            downtime_workload_ns: report.downtime.workload_downtime().as_nanos(),
            downtime_vm_ns: report.downtime.vm_downtime().as_nanos(),
            safepoint_wait_ns: report.downtime.safepoint_wait.as_nanos(),
            enforced_gc_ns: report.downtime.enforced_gc.as_nanos(),
            final_update_ns: report.downtime.final_update.as_nanos(),
            last_iteration_ns: report.downtime.last_iteration.as_nanos(),
            resume_ns: report.downtime.resume.as_nanos(),
            pages_scanned,
            scan_cpu_ns,
            scan_pages_per_cpu_sec,
            histograms,
            series,
            counters,
            cold: report.cold.map(|c| ColdDigest {
                pages: c.cold_pages,
                deferred_pages: c.deferred_pages,
                deferred_sent_pages: c.deferred_sent_pages,
                deferred_sent_bytes: c.deferred_sent_bytes,
                pending_at_pause: c.pending_at_pause,
                delta_hits: c.delta_hits,
                delta_misses: c.delta_misses,
                delta_fallbacks: c.delta_fallbacks,
                delta_overflows: c.delta_overflows,
                delta_wire_bytes: c.delta_wire_bytes,
                delta_full_bytes: c.delta_full_bytes,
                delta_saved_bytes_ratio: c.saved_bytes_ratio(),
                delta_cache_hit_rate: c.cache_hit_rate(),
            }),
            findings: Vec::new(),
            meta,
        };
        digest.findings = digest.analyze();
        digest
    }

    /// Applies the anomaly rules, in fixed order so output is deterministic.
    fn analyze(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        if self.outcome_kind == "degraded_vanilla" {
            findings.push(Finding {
                rule: "degraded_vanilla",
                detail: format!(
                    "assisted protocol degraded to vanilla pre-copy (fault: {})",
                    self.fault
                ),
            });
        }
        if self.stop_reason != "dirty_threshold" {
            findings.push(Finding {
                rule: "precopy_not_converging",
                detail: format!(
                    "live pre-copy never reached the dirty threshold (stopped by {} after {} iterations, {} bytes)",
                    self.stop_reason, self.iterations, self.total_bytes
                ),
            });
        }
        if self.stragglers > 0 {
            findings.push(Finding {
                rule: "straggler_lane",
                detail: format!(
                    "{} assisting application(s) straggled and were forcibly un-skipped",
                    self.stragglers
                ),
            });
        }
        if self.enforced_gc_ns > GC_OVERRUN_BUDGET_NS {
            findings.push(Finding {
                rule: "gc_overrun",
                detail: format!(
                    "enforced GC pause of {} ns exceeds the {} ns budget",
                    self.enforced_gc_ns, GC_OVERRUN_BUDGET_NS
                ),
            });
        }
        if self.meta.assisted
            && self.outcome_kind == "completed"
            && self.pages_skipped_transfer == 0
        {
            findings.push(Finding {
                rule: "zero_skip_run",
                detail: "assisted run completed without skipping a single page on \
                         transfer-bit grounds — assistance bought nothing"
                    .to_string(),
            });
        }
        findings
    }

    /// Serialises the digest as pretty-printed JSON. Field order is fixed
    /// and all maps are sorted, so same-seed runs produce byte-identical
    /// documents.
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        let schema = if self.cold.is_some() {
            DIGEST_SCHEMA_V3
        } else {
            DIGEST_SCHEMA
        };
        let _ = writeln!(o, "  \"schema\": \"{schema}\",");
        o.push_str("  \"scenario\": {\n");
        let _ = writeln!(o, "    \"name\": \"{}\",", escape_json(&self.meta.name));
        let _ = writeln!(
            o,
            "    \"workload\": \"{}\",",
            escape_json(&self.meta.workload)
        );
        let _ = writeln!(o, "    \"assisted\": {},", self.meta.assisted);
        let _ = writeln!(o, "    \"seed\": {}", self.meta.seed);
        o.push_str("  },\n");
        o.push_str("  \"outcome\": {\n");
        let _ = writeln!(o, "    \"kind\": \"{}\",", self.outcome_kind);
        let _ = writeln!(o, "    \"fault\": \"{}\",", self.fault);
        let _ = writeln!(o, "    \"stop_reason\": \"{}\"", self.stop_reason);
        o.push_str("  },\n");
        o.push_str("  \"totals\": {\n");
        let _ = writeln!(o, "    \"total_duration_ns\": {},", self.total_duration_ns);
        let _ = writeln!(o, "    \"total_bytes\": {},", self.total_bytes);
        let _ = writeln!(o, "    \"cpu_time_ns\": {},", self.cpu_time_ns);
        let _ = writeln!(o, "    \"iterations\": {},", self.iterations);
        let _ = writeln!(o, "    \"stragglers\": {}", self.stragglers);
        o.push_str("  },\n");
        o.push_str("  \"pages\": {\n");
        let _ = writeln!(o, "    \"sent\": {},", self.pages_sent);
        let _ = writeln!(
            o,
            "    \"skipped_transfer\": {},",
            self.pages_skipped_transfer
        );
        let _ = writeln!(o, "    \"skipped_dirty\": {}", self.pages_skipped_dirty);
        o.push_str("  },\n");
        o.push_str("  \"downtime_ns\": {\n");
        let _ = writeln!(o, "    \"workload\": {},", self.downtime_workload_ns);
        let _ = writeln!(o, "    \"vm\": {},", self.downtime_vm_ns);
        let _ = writeln!(o, "    \"safepoint_wait\": {},", self.safepoint_wait_ns);
        let _ = writeln!(o, "    \"enforced_gc\": {},", self.enforced_gc_ns);
        let _ = writeln!(o, "    \"final_update\": {},", self.final_update_ns);
        let _ = writeln!(o, "    \"last_iteration\": {},", self.last_iteration_ns);
        let _ = writeln!(o, "    \"resume\": {}", self.resume_ns);
        o.push_str("  },\n");
        o.push_str("  \"scan\": {\n");
        let _ = writeln!(o, "    \"pages_scanned\": {},", self.pages_scanned);
        let _ = writeln!(o, "    \"scan_cpu_ns\": {},", self.scan_cpu_ns);
        let _ = writeln!(
            o,
            "    \"pages_per_cpu_sec\": {}",
            fmt_f64(self.scan_pages_per_cpu_sec)
        );
        o.push_str("  },\n");
        if let Some(c) = &self.cold {
            o.push_str("  \"cold\": {\n");
            let _ = writeln!(o, "    \"pages\": {},", c.pages);
            o.push_str("    \"deferred\": {\n");
            let _ = writeln!(o, "      \"pages\": {},", c.deferred_pages);
            let _ = writeln!(o, "      \"sent_pages\": {},", c.deferred_sent_pages);
            let _ = writeln!(o, "      \"sent_bytes\": {},", c.deferred_sent_bytes);
            let _ = writeln!(o, "      \"pending_at_pause\": {}", c.pending_at_pause);
            o.push_str("    },\n");
            o.push_str("    \"delta\": {\n");
            let _ = writeln!(o, "      \"hits\": {},", c.delta_hits);
            let _ = writeln!(o, "      \"misses\": {},", c.delta_misses);
            let _ = writeln!(o, "      \"fallbacks\": {},", c.delta_fallbacks);
            let _ = writeln!(o, "      \"overflows\": {},", c.delta_overflows);
            let _ = writeln!(o, "      \"wire_bytes\": {},", c.delta_wire_bytes);
            let _ = writeln!(o, "      \"full_bytes\": {},", c.delta_full_bytes);
            let _ = writeln!(
                o,
                "      \"saved_bytes_ratio\": {},",
                fmt_f64(c.delta_saved_bytes_ratio)
            );
            let _ = writeln!(
                o,
                "      \"cache_hit_rate\": {}",
                fmt_f64(c.delta_cache_hit_rate)
            );
            o.push_str("    }\n");
            o.push_str("  },\n");
        }
        o.push_str("  \"histograms\": {\n");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            let _ = write!(
                o,
                "    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                escape_json(key), h.count, h.min, h.max, h.sum, h.p50, h.p95, h.p99
            );
            o.push_str(if i + 1 < self.histograms.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        o.push_str("  },\n");
        o.push_str("  \"series\": {\n");
        for (i, (key, s)) in self.series.iter().enumerate() {
            let _ = write!(
                o,
                "    \"{}\": {{\"count\": {}, \"dropped\": {}, \"cadence_ns\": {}, \"mean\": {}, \"last\": {}, \"p50\": {}, \"p95\": {}}}",
                escape_json(key),
                s.count,
                s.dropped,
                s.cadence_ns,
                fmt_f64(s.mean),
                fmt_f64(s.last),
                fmt_f64(s.p50),
                fmt_f64(s.p95)
            );
            o.push_str(if i + 1 < self.series.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        o.push_str("  },\n");
        o.push_str("  \"counters\": {\n");
        for (i, (key, v)) in self.counters.iter().enumerate() {
            let _ = write!(o, "    \"{}\": {}", escape_json(key), v);
            o.push_str(if i + 1 < self.counters.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        o.push_str("  },\n");
        o.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"rule\": \"{}\", \"detail\": \"{}\"}}",
                f.rule,
                escape_json(&f.detail)
            );
            o.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        o.push_str("  ]\n");
        o.push_str("}\n");
        o
    }
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// Fleet digests: one document per host drain.
// ---------------------------------------------------------------------------

/// Schema identifier of fleet digest documents.
/// v2 added per-VM detection fields and the drain-level `detect` block
/// (workload-observatory accuracy accounting).
pub const FLEET_DIGEST_SCHEMA: &str = "javmm-fleet-digest-v2";

/// Identity of the host drain a fleet digest describes.
#[derive(Debug, Clone)]
pub struct FleetMeta {
    /// Stable roster name (e.g. `drain12`).
    pub name: String,
    /// Ordering policy the scheduler ran (e.g. `fifo`).
    pub policy: String,
    /// Root seed of the drain.
    pub seed: u64,
    /// Shared uplink capacity in bytes/second.
    pub uplink_bytes_per_sec: f64,
    /// Admission-control concurrency cap.
    pub max_concurrent: u32,
}

/// One VM's slice of a fleet digest: its full per-VM [`RunDigest`] plus
/// the scheduling and SLA facts only the fleet knows.
#[derive(Debug, Clone)]
pub struct FleetVmEntry {
    /// The per-VM digest, exactly as a dedicated-link run would produce it.
    pub digest: RunDigest,
    /// When the scheduler admitted (and began) this migration, in
    /// nanoseconds since the drain started.
    pub admitted_at_ns: u64,
    /// When the migration completed, in nanoseconds since the drain
    /// started.
    pub ended_at_ns: u64,
    /// Cycle period the workload observatory detected at admission, in
    /// nanoseconds; 0 when the detector produced no estimate.
    pub detected_period_ns: u64,
    /// Detector confidence at admission (0 when no estimate).
    pub detected_confidence: f64,
    /// Whether the estimate cleared the scheduler's confidence gate.
    pub detect_confident: bool,
    /// The tenant's declared cycle period in nanoseconds; 0 for steady
    /// tenants with no declared phases.
    pub declared_period_ns: u64,
    /// For tenants with a declared cycle: whether a gate-clearing estimate
    /// placed this admission below the declared cycle-average dirty rate
    /// (a window hit). `None` for steady tenants — they have no windows.
    pub window_hit: Option<bool>,
    /// SLA cost of this migration.
    pub sla: crate::sla::SlaCost,
}

/// Incremental histogram merger for streamed drains: telemetry snapshots
/// fold in one at a time — as each VM's migration completes — and the
/// merged state is a bounded set of log-bucket histograms, not the
/// snapshots themselves. Bucket-wise merging is commutative, so folding in
/// completion order produces the same summaries as folding in roster
/// order ([`Histogram::merge`]).
///
/// [`Histogram::merge`]: simkit::telemetry::hist::Histogram::merge
#[derive(Debug, Default)]
pub struct HistMerger {
    merged: BTreeMap<String, simkit::telemetry::hist::Histogram>,
}

impl HistMerger {
    /// An empty merger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one telemetry snapshot's histograms into the merged state.
    pub fn add(&mut self, t: &simkit::telemetry::RunTelemetry) {
        for h in &t.hists {
            self.merged
                .entry(format!("{}/{}", h.subsystem, h.name))
                .or_default()
                .merge(&h.hist);
        }
    }

    /// Finishes the merge into per-family digest summaries.
    pub fn finish(self) -> BTreeMap<String, HistDigest> {
        self.merged
            .into_iter()
            .map(|(key, h)| {
                (
                    key,
                    HistDigest {
                        count: h.count(),
                        min: h.min(),
                        max: h.max(),
                        sum: h.sum(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                    },
                )
            })
            .collect()
    }
}

/// Merges raw per-VM histograms (keyed `subsystem/name`) into fleet-level
/// summaries — statistically identical to having recorded every VM's
/// samples into one fleet-wide recorder. Batch form of [`HistMerger`].
pub fn merge_histograms<'a>(
    telemetries: impl IntoIterator<Item = &'a simkit::telemetry::RunTelemetry>,
) -> BTreeMap<String, HistDigest> {
    let mut merger = HistMerger::new();
    for t in telemetries {
        merger.add(t);
    }
    merger.finish()
}

/// Drain-level detection-accuracy accounting: how well the workload
/// observatory's online estimates tracked the declared ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDetect {
    /// VMs admitted with a gate-clearing estimate.
    pub estimated: u32,
    /// VMs whose tenant declared a phase cycle (the only ground truth).
    pub cyclic_declared: u32,
    /// Cyclic VMs whose admission was a window hit.
    pub window_hits: u32,
    /// `window_hits / cyclic_declared`; 1.0 when no tenant is cyclic (an
    /// all-steady roster has no windows to miss).
    pub window_hit_rate: f64,
    /// Mean detector confidence across all VMs (0 counts for no-estimate).
    pub mean_confidence: f64,
    /// Mean relative period accuracy `1 - |detected - declared| /
    /// declared` over cyclic VMs with a gate-clearing estimate, clamped at
    /// 0; 1.0 when no such VM exists.
    pub period_accuracy: f64,
}

impl FleetDetect {
    /// Folds the per-VM detection fields into drain-level accounting.
    pub fn from_vms(vms: &[FleetVmEntry]) -> Self {
        let estimated = vms.iter().filter(|v| v.detect_confident).count() as u32;
        let cyclic: Vec<&FleetVmEntry> = vms.iter().filter(|v| v.declared_period_ns > 0).collect();
        let window_hits = cyclic.iter().filter(|v| v.window_hit == Some(true)).count() as u32;
        let window_hit_rate = if cyclic.is_empty() {
            1.0
        } else {
            f64::from(window_hits) / cyclic.len() as f64
        };
        let mean_confidence = if vms.is_empty() {
            0.0
        } else {
            vms.iter().map(|v| v.detected_confidence).sum::<f64>() / vms.len() as f64
        };
        let accuracies: Vec<f64> = cyclic
            .iter()
            .filter(|v| v.detect_confident)
            .map(|v| {
                let declared = v.declared_period_ns as f64;
                let err = (v.detected_period_ns as f64 - declared).abs() / declared;
                (1.0 - err).max(0.0)
            })
            .collect();
        let period_accuracy = if accuracies.is_empty() {
            1.0
        } else {
            accuracies.iter().sum::<f64>() / accuracies.len() as f64
        };
        Self {
            estimated,
            cyclic_declared: cyclic.len() as u32,
            window_hits,
            window_hit_rate,
            mean_confidence,
            period_accuracy,
        }
    }
}

/// The folded outcome of one whole-host drain: per-VM rows in roster
/// order, fleet totals, and merged histograms.
#[derive(Debug, Clone)]
pub struct FleetDigest {
    /// Drain identity.
    pub meta: FleetMeta,
    /// Per-VM entries, in roster order.
    pub vms: Vec<FleetVmEntry>,
    /// Total eviction time: from drain start to the last migration's
    /// completion, in nanoseconds.
    pub eviction_ns: u64,
    /// Sum of per-VM workload downtime, in nanoseconds.
    pub aggregate_downtime_ns: u64,
    /// Sum of per-VM wire bytes.
    pub total_bytes: u64,
    /// Sum of per-VM SLA costs.
    pub sla_total: crate::sla::SlaCost,
    /// VMs whose run degraded to vanilla pre-copy.
    pub degraded: u32,
    /// VMs whose live phase never reached the dirty threshold.
    pub nonconverged: u32,
    /// Workload-observatory accuracy accounting.
    pub detect: FleetDetect,
    /// Fleet-level histogram summaries merged across all VMs.
    pub histograms: BTreeMap<String, HistDigest>,
}

impl FleetDigest {
    /// Assembles a fleet digest from per-VM entries (roster order) and the
    /// pre-merged fleet histograms (see [`merge_histograms`]).
    pub fn new(
        meta: FleetMeta,
        vms: Vec<FleetVmEntry>,
        histograms: BTreeMap<String, HistDigest>,
    ) -> Self {
        let eviction_ns = vms.iter().map(|v| v.ended_at_ns).max().unwrap_or(0);
        let aggregate_downtime_ns = vms.iter().map(|v| v.digest.downtime_workload_ns).sum();
        let total_bytes = vms.iter().map(|v| v.digest.total_bytes).sum();
        let mut sla_total = crate::sla::SlaCost::ZERO;
        for v in &vms {
            sla_total.add(&v.sla);
        }
        let degraded = vms
            .iter()
            .filter(|v| v.digest.outcome_kind != "completed")
            .count() as u32;
        let nonconverged = vms
            .iter()
            .filter(|v| v.digest.stop_reason != "dirty_threshold")
            .count() as u32;
        let detect = FleetDetect::from_vms(&vms);
        Self {
            meta,
            vms,
            eviction_ns,
            aggregate_downtime_ns,
            total_bytes,
            sla_total,
            degraded,
            nonconverged,
            detect,
            histograms,
        }
    }

    /// Serialises the fleet digest as pretty-printed JSON. Field order is
    /// fixed, rows are in roster order and maps sorted, so same seed +
    /// same policy produce byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"schema\": \"{FLEET_DIGEST_SCHEMA}\",");
        o.push_str("  \"drain\": {\n");
        let _ = writeln!(o, "    \"name\": \"{}\",", escape_json(&self.meta.name));
        let _ = writeln!(o, "    \"policy\": \"{}\",", escape_json(&self.meta.policy));
        let _ = writeln!(o, "    \"seed\": {},", self.meta.seed);
        let _ = writeln!(
            o,
            "    \"uplink_bytes_per_sec\": {},",
            fmt_f64(self.meta.uplink_bytes_per_sec)
        );
        let _ = writeln!(o, "    \"max_concurrent\": {}", self.meta.max_concurrent);
        o.push_str("  },\n");
        o.push_str("  \"totals\": {\n");
        let _ = writeln!(o, "    \"eviction_ns\": {},", self.eviction_ns);
        let _ = writeln!(
            o,
            "    \"aggregate_downtime_ns\": {},",
            self.aggregate_downtime_ns
        );
        let _ = writeln!(o, "    \"total_bytes\": {},", self.total_bytes);
        let _ = writeln!(o, "    \"sla_cost\": {},", fmt_f64(self.sla_total.total()));
        let _ = writeln!(
            o,
            "    \"sla_downtime\": {},",
            fmt_f64(self.sla_total.downtime)
        );
        let _ = writeln!(
            o,
            "    \"sla_brownout\": {},",
            fmt_f64(self.sla_total.brownout)
        );
        let _ = writeln!(
            o,
            "    \"sla_penalty\": {},",
            fmt_f64(self.sla_total.penalty)
        );
        let _ = writeln!(o, "    \"degraded\": {},", self.degraded);
        let _ = writeln!(o, "    \"nonconverged\": {}", self.nonconverged);
        o.push_str("  },\n");
        o.push_str("  \"detect\": {\n");
        let _ = writeln!(o, "    \"estimated\": {},", self.detect.estimated);
        let _ = writeln!(
            o,
            "    \"cyclic_declared\": {},",
            self.detect.cyclic_declared
        );
        let _ = writeln!(o, "    \"window_hits\": {},", self.detect.window_hits);
        let _ = writeln!(
            o,
            "    \"window_hit_rate\": {},",
            fmt_f64(self.detect.window_hit_rate)
        );
        let _ = writeln!(
            o,
            "    \"mean_confidence\": {},",
            fmt_f64(self.detect.mean_confidence)
        );
        let _ = writeln!(
            o,
            "    \"period_accuracy\": {}",
            fmt_f64(self.detect.period_accuracy)
        );
        o.push_str("  },\n");
        o.push_str("  \"vms\": [\n");
        for (i, v) in self.vms.iter().enumerate() {
            o.push_str("    {\n");
            let _ = writeln!(
                o,
                "      \"name\": \"{}\",",
                escape_json(&v.digest.meta.name)
            );
            let _ = writeln!(o, "      \"workload\": \"{}\",", v.digest.meta.workload);
            let _ = writeln!(o, "      \"assisted\": {},", v.digest.meta.assisted);
            let _ = writeln!(o, "      \"outcome\": \"{}\",", v.digest.outcome_kind);
            let _ = writeln!(o, "      \"stop_reason\": \"{}\",", v.digest.stop_reason);
            let _ = writeln!(o, "      \"admitted_at_ns\": {},", v.admitted_at_ns);
            let _ = writeln!(o, "      \"ended_at_ns\": {},", v.ended_at_ns);
            let _ = writeln!(o, "      \"migration_ns\": {},", v.digest.total_duration_ns);
            let _ = writeln!(
                o,
                "      \"downtime_workload_ns\": {},",
                v.digest.downtime_workload_ns
            );
            let _ = writeln!(o, "      \"iterations\": {},", v.digest.iterations);
            let _ = writeln!(o, "      \"total_bytes\": {},", v.digest.total_bytes);
            let _ = writeln!(o, "      \"detected_period_ns\": {},", v.detected_period_ns);
            let _ = writeln!(
                o,
                "      \"detected_confidence\": {},",
                fmt_f64(v.detected_confidence)
            );
            let _ = writeln!(o, "      \"detect_confident\": {},", v.detect_confident);
            let _ = writeln!(o, "      \"declared_period_ns\": {},", v.declared_period_ns);
            let _ = writeln!(
                o,
                "      \"window_hit\": {},",
                match v.window_hit {
                    Some(h) => h.to_string(),
                    None => "null".to_string(),
                }
            );
            let _ = writeln!(o, "      \"sla_cost\": {}", fmt_f64(v.sla.total()));
            o.push_str(if i + 1 < self.vms.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        o.push_str("  ],\n");
        o.push_str("  \"histograms\": {\n");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            let _ = write!(
                o,
                "    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                escape_json(key), h.count, h.min, h.max, h.sum, h.p50, h.p95, h.p99
            );
            o.push_str(if i + 1 < self.histograms.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        o.push_str("  }\n");
        o.push_str("}\n");
        o
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (compare-side; no external dependency).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64`; every quantity a digest carries
/// is well below 2^53, so no precision is lost.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted by `BTreeMap`).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, DigestError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DigestError::parse(p.pos, "trailing garbage"));
        }
        Ok(v)
    }

    /// Walks `path` through nested objects.
    pub fn get(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for key in path {
            match cur {
                Json::Obj(map) => cur = map.get(*key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Errors from digest parsing or comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigestError {
    /// The document is not valid JSON (byte offset, description).
    Parse(usize, String),
    /// The document parsed but is not a digest this code understands.
    Schema(String),
}

impl DigestError {
    fn parse(pos: usize, msg: &str) -> Self {
        DigestError::Parse(pos, msg.to_string())
    }
}

impl core::fmt::Display for DigestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DigestError::Parse(pos, msg) => write!(f, "JSON parse error at byte {pos}: {msg}"),
            DigestError::Schema(msg) => write!(f, "digest schema error: {msg}"),
        }
    }
}

impl std::error::Error for DigestError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DigestError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DigestError::parse(
                self.pos,
                &format!("expected '{}'", b as char),
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, DigestError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(DigestError::parse(self.pos, &format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, DigestError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(DigestError::parse(self.pos, "expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, DigestError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| DigestError::parse(self.pos, "unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| DigestError::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| DigestError::parse(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't appear in digests;
                            // replace rather than reject if one shows up.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(DigestError::parse(self.pos, "unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| core::str::from_utf8(s).ok())
                        .ok_or_else(|| DigestError::parse(start, "invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, DigestError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DigestError::parse(start, "invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| DigestError::parse(start, "invalid number"))
    }

    fn array(&mut self) -> Result<Json, DigestError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(DigestError::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, DigestError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(DigestError::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Cross-run comparison.
// ---------------------------------------------------------------------------

/// Which direction of change counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// An increase beyond the threshold is a regression (durations, bytes).
    HigherWorse,
    /// A decrease beyond the threshold is a regression (throughputs).
    LowerWorse,
}

struct CompareMetric {
    path: &'static [&'static str],
    direction: Direction,
    threshold: f64,
}

/// The per-metric regression gate: JSON path, bad direction, and the
/// relative-change threshold beyond which the change is a regression.
const COMPARE_METRICS: &[CompareMetric] = &[
    CompareMetric {
        path: &["totals", "total_duration_ns"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["totals", "total_bytes"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["totals", "cpu_time_ns"],
        direction: Direction::HigherWorse,
        threshold: 0.05,
    },
    CompareMetric {
        path: &["downtime_ns", "workload"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["downtime_ns", "vm"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["pages", "sent"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["scan", "pages_per_cpu_sec"],
        direction: Direction::LowerWorse,
        threshold: 0.10,
    },
];

/// One metric's old-vs-new comparison.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Dotted metric name (e.g. `scan.pages_per_cpu_sec`).
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed relative change (`(new - old) / old`); `0` when both are 0.
    pub change: f64,
    /// The gate's threshold for this metric.
    pub threshold: f64,
    /// Which direction is bad for this metric.
    pub direction: Direction,
    /// Whether the change trips the gate.
    pub regressed: bool,
}

/// The result of comparing two digests.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Scenario name both digests describe.
    pub scenario: String,
    /// Outcome-kind change, if any (`old -> new`); always a regression.
    pub outcome_changed: Option<(String, String)>,
    /// Per-metric deltas in gate order.
    pub deltas: Vec<MetricDelta>,
}

impl CompareReport {
    /// Names of all regressed metrics (`outcome` first if it changed).
    pub fn regressions(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.outcome_changed.is_some() {
            out.push("outcome.kind".to_string());
        }
        out.extend(
            self.deltas
                .iter()
                .filter(|d| d.regressed)
                .map(|d| d.metric.clone()),
        );
        out
    }

    /// Whether any gate tripped.
    pub fn has_regression(&self) -> bool {
        self.outcome_changed.is_some() || self.deltas.iter().any(|d| d.regressed)
    }

    /// Renders the comparison as a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scenario: {}", self.scenario);
        if let Some((old, new)) = &self.outcome_changed {
            let _ = writeln!(out, "  outcome.kind: {old} -> {new}  REGRESSION");
        }
        for d in &self.deltas {
            let arrow = match d.direction {
                Direction::HigherWorse => "<=",
                Direction::LowerWorse => ">=",
            };
            let _ = writeln!(
                out,
                "  {:<28} {} -> {}  {:+.2}% (gate: {} {:+.0}%)  {}",
                d.metric,
                fmt_f64(d.old),
                fmt_f64(d.new),
                d.change * 100.0,
                arrow,
                match d.direction {
                    Direction::HigherWorse => d.threshold * 100.0,
                    Direction::LowerWorse => -d.threshold * 100.0,
                },
                if d.regressed { "REGRESSION" } else { "ok" },
            );
        }
        let regs = self.regressions();
        if regs.is_empty() {
            out.push_str("verdict: OK\n");
        } else {
            let _ = writeln!(out, "verdict: REGRESSION in {}", regs.join(", "));
        }
        out
    }
}

fn require_str<'a>(doc: &'a Json, path: &[&str]) -> Result<&'a str, DigestError> {
    doc.get(path)
        .and_then(Json::as_str)
        .ok_or_else(|| DigestError::Schema(format!("missing string field {}", path.join("."))))
}

/// Numeric gate-field reader. Also accepts booleans (`true` = 1, `false`
/// = 0), so gates can watch flags like `harness.outputs_identical`: with
/// `LowerWorse` and threshold 0, a `true -> false` flip is a `-100%`
/// change and trips the gate.
fn require_gate_num(doc: &Json, path: &[&str]) -> Result<f64, DigestError> {
    match doc.get(path) {
        Some(Json::Bool(b)) => Ok(if *b { 1.0 } else { 0.0 }),
        other => other
            .and_then(Json::as_f64)
            .ok_or_else(|| DigestError::Schema(format!("missing gate field {}", path.join(".")))),
    }
}

/// Compares two digest documents (baseline, candidate) under the built-in
/// per-metric thresholds. Errors if either document fails to parse, is not
/// schema `javmm-run-digest-v1`, or the two digests describe different
/// scenarios.
pub fn compare(old_json: &str, new_json: &str) -> Result<CompareReport, DigestError> {
    let old = Json::parse(old_json)?;
    let new = Json::parse(new_json)?;
    for doc in [&old, &new] {
        let schema = require_str(doc, &["schema"])?;
        if schema != DIGEST_SCHEMA && schema != DIGEST_SCHEMA_V3 {
            return Err(DigestError::Schema(format!(
                "unsupported schema '{schema}' (want '{DIGEST_SCHEMA}' or '{DIGEST_SCHEMA_V3}')"
            )));
        }
    }
    let old_name = require_str(&old, &["scenario", "name"])?;
    let new_name = require_str(&new, &["scenario", "name"])?;
    if old_name != new_name {
        return Err(DigestError::Schema(format!(
            "digests describe different scenarios ('{old_name}' vs '{new_name}')"
        )));
    }
    let old_kind = require_str(&old, &["outcome", "kind"])?;
    let new_kind = require_str(&new, &["outcome", "kind"])?;
    let outcome_changed = if old_kind != new_kind {
        Some((old_kind.to_string(), new_kind.to_string()))
    } else {
        None
    };
    let mut deltas = metric_deltas(&old, &new, COMPARE_METRICS)?;
    // Cold-assist gates apply only when both digests carry the section;
    // a one-sided section means the subsystem was toggled between the
    // runs, which no threshold can meaningfully judge.
    match (old.get(&["cold"]).is_some(), new.get(&["cold"]).is_some()) {
        (true, true) => deltas.extend(metric_deltas(&old, &new, COLD_COMPARE_METRICS)?),
        (false, false) => {}
        (old_has, _) => {
            return Err(DigestError::Schema(format!(
                "cold section present only in the {} digest — compare runs with the \
                 cold assist configured identically",
                if old_has { "baseline" } else { "candidate" }
            )));
        }
    }
    Ok(CompareReport {
        scenario: old_name.to_string(),
        outcome_changed,
        deltas,
    })
}

/// The cold-assist regression gate, applied on top of [`COMPARE_METRICS`]
/// when both digests are v3. `cold.delta.saved_bytes_ratio` is the drill
/// metric: shrinking the delta page cache to one entry destroys the XOR
/// codec's savings and must trip exactly this gate.
const COLD_COMPARE_METRICS: &[CompareMetric] = &[
    CompareMetric {
        path: &["cold", "delta", "saved_bytes_ratio"],
        direction: Direction::LowerWorse,
        threshold: 0.05,
    },
    CompareMetric {
        path: &["cold", "delta", "cache_hit_rate"],
        direction: Direction::LowerWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["cold", "deferred", "sent_bytes"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
];

fn metric_deltas(
    old: &Json,
    new: &Json,
    metrics: &[CompareMetric],
) -> Result<Vec<MetricDelta>, DigestError> {
    let mut deltas = Vec::with_capacity(metrics.len());
    for m in metrics {
        let old_v = require_gate_num(old, m.path)?;
        let new_v = require_gate_num(new, m.path)?;
        let change = if old_v != 0.0 {
            (new_v - old_v) / old_v
        } else if new_v == 0.0 {
            0.0
        } else {
            // From zero to non-zero: infinite relative growth.
            f64::INFINITY
        };
        let regressed = match m.direction {
            Direction::HigherWorse => change > m.threshold,
            Direction::LowerWorse => change < -m.threshold,
        };
        deltas.push(MetricDelta {
            metric: m.path.join("."),
            old: old_v,
            new: new_v,
            change,
            threshold: m.threshold,
            direction: m.direction,
            regressed,
        });
    }
    Ok(deltas)
}

/// The fleet-digest regression gate. Alongside the drain's raw outcomes
/// it gates the workload observatory's detection quality: a drop in
/// `detect.window_hit_rate`, `detect.mean_confidence` or
/// `detect.period_accuracy` is a regression even when eviction time holds.
const FLEET_COMPARE_METRICS: &[CompareMetric] = &[
    CompareMetric {
        path: &["totals", "eviction_ns"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["totals", "aggregate_downtime_ns"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["totals", "total_bytes"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["totals", "sla_cost"],
        direction: Direction::HigherWorse,
        threshold: 0.15,
    },
    CompareMetric {
        path: &["totals", "degraded"],
        direction: Direction::HigherWorse,
        threshold: 0.0,
    },
    CompareMetric {
        path: &["totals", "nonconverged"],
        direction: Direction::HigherWorse,
        threshold: 0.0,
    },
    CompareMetric {
        path: &["detect", "window_hit_rate"],
        direction: Direction::LowerWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["detect", "mean_confidence"],
        direction: Direction::LowerWorse,
        threshold: 0.25,
    },
    CompareMetric {
        path: &["detect", "period_accuracy"],
        direction: Direction::LowerWorse,
        threshold: 0.10,
    },
];

/// Compares two *fleet* digest documents (baseline, candidate) under the
/// fleet regression gate. Errors if either document fails to parse, is
/// not schema `javmm-fleet-digest-v2`, or the two digests describe
/// different drains or policies.
pub fn compare_fleet(old_json: &str, new_json: &str) -> Result<CompareReport, DigestError> {
    let old = Json::parse(old_json)?;
    let new = Json::parse(new_json)?;
    for doc in [&old, &new] {
        let schema = require_str(doc, &["schema"])?;
        if schema != FLEET_DIGEST_SCHEMA {
            return Err(DigestError::Schema(format!(
                "unsupported schema '{schema}' (want '{FLEET_DIGEST_SCHEMA}')"
            )));
        }
    }
    let old_name = require_str(&old, &["drain", "name"])?;
    let new_name = require_str(&new, &["drain", "name"])?;
    if old_name != new_name {
        return Err(DigestError::Schema(format!(
            "digests describe different drains ('{old_name}' vs '{new_name}')"
        )));
    }
    let old_policy = require_str(&old, &["drain", "policy"])?;
    let new_policy = require_str(&new, &["drain", "policy"])?;
    if old_policy != new_policy {
        return Err(DigestError::Schema(format!(
            "digests describe different policies ('{old_policy}' vs '{new_policy}')"
        )));
    }
    let deltas = metric_deltas(&old, &new, FLEET_COMPARE_METRICS)?;
    Ok(CompareReport {
        scenario: format!("{old_name}/{old_policy}"),
        outcome_changed: None,
        deltas,
    })
}

/// Schema tag of `BENCH_precopy.json` v2 documents (written by the
/// `bench` binary, gated by [`compare_precopy_bench`]).
pub const BENCH_PRECOPY_SCHEMA: &str = "javmm-bench-precopy-v2";

/// The pre-copy benchmark regression gate. `harness.parallel_speedup` is
/// the *modeled* 4-worker makespan speedup (`speedup_basis` in the
/// document says so) — a drop past 35% means the multi-core pipeline
/// degenerated (the seeded `JAVMM_SERIALIZE_POOL=1` drill collapses it to
/// ~1.0 and must trip exactly this metric). `scan.speedup` guards the
/// word-granular kernel against returning to per-bit costs, and
/// `harness.outputs_identical` is a boolean tripwire: any `true -> false`
/// flip (parallel output diverging from serial) is a regression outright.
const BENCH_COMPARE_METRICS: &[CompareMetric] = &[
    CompareMetric {
        path: &["harness", "parallel_speedup"],
        direction: Direction::LowerWorse,
        threshold: 0.35,
    },
    CompareMetric {
        path: &["scan", "speedup"],
        direction: Direction::LowerWorse,
        threshold: 0.50,
    },
    CompareMetric {
        path: &["harness", "outputs_identical"],
        direction: Direction::LowerWorse,
        threshold: 0.0,
    },
];

/// Compares two pre-copy benchmark documents (baseline, candidate) under
/// the parallel-efficiency gate. Errors if either document fails to
/// parse, is not schema `javmm-bench-precopy-v2`, or was produced with
/// `--scan-only` (its `harness` is `null`, so there is nothing to gate).
pub fn compare_precopy_bench(old_json: &str, new_json: &str) -> Result<CompareReport, DigestError> {
    let old = Json::parse(old_json)?;
    let new = Json::parse(new_json)?;
    for doc in [&old, &new] {
        let schema = require_str(doc, &["schema"])?;
        if schema != BENCH_PRECOPY_SCHEMA {
            return Err(DigestError::Schema(format!(
                "unsupported schema '{schema}' (want '{BENCH_PRECOPY_SCHEMA}')"
            )));
        }
    }
    let deltas = metric_deltas(&old, &new, BENCH_COMPARE_METRICS)?;
    Ok(CompareReport {
        scenario: "precopy-bench".to_string(),
        outcome_changed: None,
        deltas,
    })
}

/// Schema tag of `BENCH_evacuate.json` documents (written by the `bench`
/// binary's `evacuate` subcommand, gated by [`compare_evacuate`]).
pub const BENCH_EVACUATE_SCHEMA: &str = "javmm-bench-evacuate-v1";

/// The evacuation benchmark regression gate. It watches the SLA-aware
/// placement's headline outcomes — `placements.sla.eviction_ns` is the
/// drill metric: disabling placement (pinning every VM onto one
/// destination) funnels the whole fleet through a single ingress and
/// blows eviction time past the 10% gate. The `sla_vs_random` ratios
/// additionally pin the policy's *advantage*: SLA-aware placement losing
/// its cost edge over random placement is a regression even if absolute
/// numbers hold.
const EVACUATE_COMPARE_METRICS: &[CompareMetric] = &[
    CompareMetric {
        path: &["placements", "sla", "eviction_ns"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["placements", "sla", "aggregate_downtime_ns"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["placements", "sla", "total_bytes"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["placements", "sla", "sla_cost"],
        direction: Direction::HigherWorse,
        threshold: 0.15,
    },
    CompareMetric {
        path: &["placements", "sla", "degraded"],
        direction: Direction::HigherWorse,
        threshold: 0.0,
    },
    CompareMetric {
        path: &["sla_vs_random", "sla_cost_ratio"],
        direction: Direction::HigherWorse,
        threshold: 0.05,
    },
    CompareMetric {
        path: &["sla_vs_random", "eviction_ratio"],
        direction: Direction::HigherWorse,
        threshold: 0.10,
    },
];

/// Compares two evacuation benchmark documents (baseline, candidate)
/// under the placement regression gate. Errors if either document fails
/// to parse, is not schema `javmm-bench-evacuate-v1`, or the two
/// documents describe different evacuation plans.
pub fn compare_evacuate(old_json: &str, new_json: &str) -> Result<CompareReport, DigestError> {
    let old = Json::parse(old_json)?;
    let new = Json::parse(new_json)?;
    for doc in [&old, &new] {
        let schema = require_str(doc, &["schema"])?;
        if schema != BENCH_EVACUATE_SCHEMA {
            return Err(DigestError::Schema(format!(
                "unsupported schema '{schema}' (want '{BENCH_EVACUATE_SCHEMA}')"
            )));
        }
    }
    let old_name = require_str(&old, &["plan"])?;
    let new_name = require_str(&new, &["plan"])?;
    if old_name != new_name {
        return Err(DigestError::Schema(format!(
            "documents describe different evacuation plans ('{old_name}' vs '{new_name}')"
        )));
    }
    let deltas = metric_deltas(&old, &new, EVACUATE_COMPARE_METRICS)?;
    Ok(CompareReport {
        scenario: old_name.to_string(),
        outcome_changed: None,
        deltas,
    })
}

/// Schema tag of `BENCH_evacuate_eta.json` documents: the evacuation
/// benchmark's mission-control companion (ETA calibration and watchdog
/// findings), written by the `bench` binary's `evacuate` subcommand and
/// gated by [`compare_evacuate_eta`].
pub const BENCH_EVACUATE_ETA_SCHEMA: &str = "javmm-bench-evacuate-eta-v1";

/// The ETA-calibration regression gate. `eta.p90_abs_err` is the headline
/// and the drill metric: the frozen-ETA drill (`bench evacuate
/// --freeze-eta`) disables re-projection, calibration error explodes, and
/// the gate must name exactly this metric. `findings.total` is a
/// tripwire: a fault-free baseline holds zero findings, so *any* finding
/// in a candidate run (the zero-to-nonzero case reports as infinite
/// growth) trips it.
const EVACUATE_ETA_COMPARE_METRICS: &[CompareMetric] = &[
    CompareMetric {
        path: &["eta", "p90_abs_err"],
        direction: Direction::HigherWorse,
        threshold: 0.25,
    },
    CompareMetric {
        path: &["eta", "p50_abs_err"],
        direction: Direction::HigherWorse,
        threshold: 0.50,
    },
    CompareMetric {
        path: &["findings", "total"],
        direction: Direction::HigherWorse,
        threshold: 0.0,
    },
];

/// Compares two evacuation ETA-calibration documents (baseline,
/// candidate) under the calibration gate. Errors if either document fails
/// to parse, is not schema `javmm-bench-evacuate-eta-v1`, or the two
/// documents describe different evacuation plans.
pub fn compare_evacuate_eta(old_json: &str, new_json: &str) -> Result<CompareReport, DigestError> {
    let old = Json::parse(old_json)?;
    let new = Json::parse(new_json)?;
    for doc in [&old, &new] {
        let schema = require_str(doc, &["schema"])?;
        if schema != BENCH_EVACUATE_ETA_SCHEMA {
            return Err(DigestError::Schema(format!(
                "unsupported schema '{schema}' (want '{BENCH_EVACUATE_ETA_SCHEMA}')"
            )));
        }
    }
    let old_name = require_str(&old, &["plan"])?;
    let new_name = require_str(&new, &["plan"])?;
    if old_name != new_name {
        return Err(DigestError::Schema(format!(
            "documents describe different evacuation plans ('{old_name}' vs '{new_name}')"
        )));
    }
    let deltas = metric_deltas(&old, &new, EVACUATE_ETA_COMPARE_METRICS)?;
    Ok(CompareReport {
        scenario: format!("{old_name}/eta"),
        outcome_changed: None,
        deltas,
    })
}

/// Schema tag of `BENCH_cold.json` documents (written by the `bench`
/// binary's `cold` subcommand, gated by [`compare_cold_bench`]).
pub const BENCH_COLD_SCHEMA: &str = "javmm-bench-cold-v1";

/// The cold-assist benchmark regression gate. The headline savings ratios
/// (total and last-iteration bytes, assist vs no-assist baseline over the
/// cold-heavy roster) must not shrink, `delta.saved_bytes_ratio` is the
/// CI drill metric (a one-entry delta cache collapses it), and
/// `harness.verified` is a boolean tripwire — any destination digest
/// mismatch is a regression outright.
const COLD_BENCH_COMPARE_METRICS: &[CompareMetric] = &[
    CompareMetric {
        path: &["savings", "total_bytes_ratio"],
        direction: Direction::LowerWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["savings", "last_iter_bytes_ratio"],
        direction: Direction::LowerWorse,
        threshold: 0.10,
    },
    CompareMetric {
        path: &["delta", "saved_bytes_ratio"],
        direction: Direction::LowerWorse,
        threshold: 0.05,
    },
    CompareMetric {
        path: &["harness", "verified"],
        direction: Direction::LowerWorse,
        threshold: 0.0,
    },
];

/// Compares two cold-assist benchmark documents (baseline, candidate)
/// under the savings gate. Errors if either document fails to parse, is
/// not schema `javmm-bench-cold-v1`, or the two documents describe
/// different rosters.
pub fn compare_cold_bench(old_json: &str, new_json: &str) -> Result<CompareReport, DigestError> {
    let old = Json::parse(old_json)?;
    let new = Json::parse(new_json)?;
    for doc in [&old, &new] {
        let schema = require_str(doc, &["schema"])?;
        if schema != BENCH_COLD_SCHEMA {
            return Err(DigestError::Schema(format!(
                "unsupported schema '{schema}' (want '{BENCH_COLD_SCHEMA}')"
            )));
        }
    }
    let old_name = require_str(&old, &["roster"])?;
    let new_name = require_str(&new, &["roster"])?;
    if old_name != new_name {
        return Err(DigestError::Schema(format!(
            "documents describe different rosters ('{old_name}' vs '{new_name}')"
        )));
    }
    let deltas = metric_deltas(&old, &new, COLD_BENCH_COMPARE_METRICS)?;
    Ok(CompareReport {
        scenario: old_name.to_string(),
        outcome_changed: None,
        deltas,
    })
}

/// Every schema id [`compare_any`] can dispatch on, in dispatch order.
pub const KNOWN_SCHEMAS: &[&str] = &[
    DIGEST_SCHEMA,
    DIGEST_SCHEMA_V3,
    FLEET_DIGEST_SCHEMA,
    BENCH_PRECOPY_SCHEMA,
    BENCH_EVACUATE_SCHEMA,
    BENCH_EVACUATE_ETA_SCHEMA,
    BENCH_COLD_SCHEMA,
];

/// Compares two digest documents of any known schema, dispatching on the
/// baseline's `schema` field: run digests (v2 and v3) go through
/// [`compare`], fleet digests through [`compare_fleet`], pre-copy
/// benchmark documents through [`compare_precopy_bench`], evacuation
/// benchmark documents through [`compare_evacuate`], ETA-calibration
/// documents through [`compare_evacuate_eta`], cold-assist benchmark
/// documents through [`compare_cold_bench`]. An unknown schema errors
/// with the full list of known ids ([`KNOWN_SCHEMAS`]), so a digest
/// produced by a newer (or misspelled) writer is diagnosable at a glance.
pub fn compare_any(old_json: &str, new_json: &str) -> Result<CompareReport, DigestError> {
    let old = Json::parse(old_json)?;
    match require_str(&old, &["schema"])? {
        s if s == DIGEST_SCHEMA || s == DIGEST_SCHEMA_V3 => compare(old_json, new_json),
        s if s == FLEET_DIGEST_SCHEMA => compare_fleet(old_json, new_json),
        s if s == BENCH_PRECOPY_SCHEMA => compare_precopy_bench(old_json, new_json),
        s if s == BENCH_EVACUATE_SCHEMA => compare_evacuate(old_json, new_json),
        s if s == BENCH_EVACUATE_ETA_SCHEMA => compare_evacuate_eta(old_json, new_json),
        s if s == BENCH_COLD_SCHEMA => compare_cold_bench(old_json, new_json),
        s => Err(DigestError::Schema(format!(
            "unsupported schema '{s}' (known schemas: {})",
            KNOWN_SCHEMAS
                .iter()
                .map(|k| format!("'{k}'"))
                .collect::<Vec<_>>()
                .join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_json(name: &str, scan_pps: f64, cpu_ns: u64, kind: &str) -> String {
        format!(
            r#"{{
              "schema": "javmm-run-digest-v2",
              "scenario": {{"name": "{name}", "workload": "derby", "assisted": true, "seed": 3}},
              "outcome": {{"kind": "{kind}", "fault": "none", "stop_reason": "dirty_threshold"}},
              "totals": {{"total_duration_ns": 1000, "total_bytes": 2000, "cpu_time_ns": {cpu_ns}, "iterations": 5, "stragglers": 0}},
              "pages": {{"sent": 100, "skipped_transfer": 10, "skipped_dirty": 5}},
              "downtime_ns": {{"workload": 300, "vm": 200, "safepoint_wait": 0, "enforced_gc": 0, "final_update": 0, "last_iteration": 100, "resume": 100}},
              "scan": {{"pages_scanned": 400, "scan_cpu_ns": 100, "pages_per_cpu_sec": {scan_pps}}},
              "histograms": {{}},
              "counters": {{}},
              "findings": []
            }}"#
        )
    }

    #[test]
    fn parser_round_trips_all_value_shapes() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\nyA"}, "d": null, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get(&["a"]).unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(1000.0)])
        );
        assert_eq!(v.get(&["b", "c"]).and_then(Json::as_str), Some("x\nyA"));
        assert_eq!(v.get(&["d"]), Some(&Json::Null));
        assert_eq!(v.get(&["e"]), Some(&Json::Bool(true)));
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1,2] trailing").is_err());
    }

    #[test]
    fn identical_digests_compare_clean() {
        let a = digest_json("derby", 4e9, 500, "completed");
        let report = compare(&a, &a).unwrap();
        assert!(!report.has_regression());
        assert!(report.regressions().is_empty());
        assert!(report.render().contains("verdict: OK"));
    }

    #[test]
    fn scan_throughput_drop_trips_only_its_own_gate() {
        let old = digest_json("derby", 4e9, 500, "completed");
        // 20% throughput drop, 2.5% CPU growth: only the scan gate trips.
        let new = digest_json("derby", 3.2e9, 512, "completed");
        let report = compare(&old, &new).unwrap();
        assert!(report.has_regression());
        assert_eq!(report.regressions(), vec!["scan.pages_per_cpu_sec"]);
        assert!(report.render().contains("scan.pages_per_cpu_sec"));
    }

    #[test]
    fn outcome_kind_change_is_always_a_regression() {
        let old = digest_json("derby", 4e9, 500, "completed");
        let new = digest_json("derby", 4e9, 500, "degraded_vanilla");
        let report = compare(&old, &new).unwrap();
        assert!(report.has_regression());
        assert_eq!(report.regressions()[0], "outcome.kind");
    }

    fn fleet_json(policy: &str, eviction_ns: u64, hit_rate: f64) -> String {
        format!(
            r#"{{
              "schema": "javmm-fleet-digest-v2",
              "drain": {{"name": "drain4", "policy": "{policy}", "seed": 7, "uplink_bytes_per_sec": 125000000, "max_concurrent": 3}},
              "totals": {{"eviction_ns": {eviction_ns}, "aggregate_downtime_ns": 900, "total_bytes": 5000, "sla_cost": 10.0, "sla_downtime": 4.0, "sla_brownout": 3.0, "sla_penalty": 3.0, "degraded": 0, "nonconverged": 0}},
              "detect": {{"estimated": 2, "cyclic_declared": 2, "window_hits": 2, "window_hit_rate": {hit_rate}, "mean_confidence": 0.6, "period_accuracy": 0.95}},
              "vms": [],
              "histograms": {{}}
            }}"#
        )
    }

    fn evacuate_json(eviction_ns: u64, cost_ratio: f64) -> String {
        format!(
            r#"{{
              "schema": "javmm-bench-evacuate-v1",
              "plan": "evacuate48",
              "placements": {{
                "sla": {{"eviction_ns": {eviction_ns}, "aggregate_downtime_ns": 900, "total_bytes": 5000, "sla_cost": 10.0, "degraded": 0, "nonconverged": 0}},
                "greedy": {{"eviction_ns": 1100, "aggregate_downtime_ns": 950, "total_bytes": 5100, "sla_cost": 11.0, "degraded": 0, "nonconverged": 0}},
                "random": {{"eviction_ns": 1200, "aggregate_downtime_ns": 980, "total_bytes": 5200, "sla_cost": 12.0, "degraded": 0, "nonconverged": 0}}
              }},
              "sla_vs_random": {{"sla_cost_ratio": {cost_ratio}, "eviction_ratio": 0.9}}
            }}"#
        )
    }

    #[test]
    fn evacuate_compare_gates_placement_outcomes() {
        let old = evacuate_json(1000, 0.83);
        let report = compare_evacuate(&old, &old).unwrap();
        assert!(!report.has_regression());
        // The pin drill funnels the fleet through one ingress: eviction
        // time explodes and the gate must name exactly that metric.
        let pinned = evacuate_json(4000, 0.83);
        let report = compare_evacuate(&old, &pinned).unwrap();
        assert!(report.has_regression());
        assert!(report
            .regressions()
            .contains(&"placements.sla.eviction_ns".to_string()));
        // Losing the cost edge over random placement is its own gate.
        let edgeless = evacuate_json(1000, 1.0);
        let report = compare_evacuate(&old, &edgeless).unwrap();
        assert!(report
            .regressions()
            .contains(&"sla_vs_random.sla_cost_ratio".to_string()));
        // compare_any dispatches on the schema tag.
        assert!(compare_any(&old, &old).is_ok());
    }

    fn eta_json(p90: f64, findings: u64) -> String {
        format!(
            r#"{{
              "schema": "javmm-bench-evacuate-eta-v1",
              "plan": "evacuate48",
              "eta": {{"vms": 48, "predictions": 300, "p50_abs_err": 0.05, "p90_abs_err": {p90}, "drift": 0.01}},
              "findings": {{"total": {findings}}}
            }}"#
        )
    }

    #[test]
    fn evacuate_eta_compare_gates_calibration() {
        let old = eta_json(0.2, 0);
        let report = compare_evacuate_eta(&old, &old).unwrap();
        assert!(!report.has_regression());
        // The frozen-ETA drill stops re-projection: the admission-time
        // guess goes stale and the gate must name the p90 metric.
        let frozen = eta_json(2.0, 0);
        let report = compare_evacuate_eta(&old, &frozen).unwrap();
        assert!(report.has_regression());
        assert!(report
            .regressions()
            .contains(&"eta.p90_abs_err".to_string()));
        assert!(report.render().contains("eta.p90_abs_err"));
        // Watchdog findings on a fault-free plan are a regression outright.
        let noisy = eta_json(0.2, 2);
        let report = compare_evacuate_eta(&old, &noisy).unwrap();
        assert_eq!(report.regressions(), vec!["findings.total"]);
        // compare_any dispatches on the schema tag.
        assert!(!compare_any(&old, &old).unwrap().has_regression());
        // Mismatched plans are an error, not a comparison.
        let other = old.replace("evacuate48", "evacuate12");
        assert!(matches!(
            compare_evacuate_eta(&old, &other),
            Err(DigestError::Schema(_))
        ));
    }

    #[test]
    fn fleet_compare_gates_detection_quality() {
        let old = fleet_json("cycle", 1000, 1.0);
        let same = compare_fleet(&old, &old).unwrap();
        assert!(!same.has_regression());
        // Halving the window-hit rate trips only the detect gate.
        let worse = fleet_json("cycle", 1000, 0.5);
        let report = compare_fleet(&old, &worse).unwrap();
        assert_eq!(report.regressions(), vec!["detect.window_hit_rate"]);
        assert!(report.render().contains("detect.window_hit_rate"));
        // Mismatched policies are an error, not a comparison.
        let fifo = fleet_json("fifo", 1000, 1.0);
        assert!(matches!(
            compare_fleet(&old, &fifo),
            Err(DigestError::Schema(_))
        ));
    }

    #[test]
    fn compare_any_dispatches_on_schema() {
        let run = digest_json("derby", 4e9, 500, "completed");
        assert!(!compare_any(&run, &run).unwrap().has_regression());
        let fleet = fleet_json("cycle", 1000, 1.0);
        assert!(!compare_any(&fleet, &fleet).unwrap().has_regression());
        let bench = bench_json(3.4, true);
        assert!(!compare_any(&bench, &bench).unwrap().has_regression());
        assert!(matches!(
            compare_any(&run, &fleet),
            Err(DigestError::Schema(_))
        ));
    }

    #[test]
    fn compare_any_unknown_schema_lists_known_ids() {
        let bogus = r#"{"schema": "javmm-made-up-v9"}"#;
        let err = match compare_any(bogus, bogus) {
            Err(DigestError::Schema(msg)) => msg,
            other => panic!("expected a schema error, got {other:?}"),
        };
        assert!(err.contains("javmm-made-up-v9"), "{err}");
        for id in KNOWN_SCHEMAS {
            assert!(err.contains(id), "error must list '{id}': {err}");
        }
    }

    fn cold_digest_json(name: &str, saved_ratio: f64, hit_rate: f64, sent_bytes: u64) -> String {
        digest_json(name, 4e9, 500, "completed")
            .replace("javmm-run-digest-v2", "javmm-run-digest-v3")
            .replace(
                "\"histograms\": {}",
                &format!(
                    r#""cold": {{
                      "pages": 5000,
                      "deferred": {{"pages": 5000, "sent_pages": 4800, "sent_bytes": {sent_bytes}, "pending_at_pause": 200}},
                      "delta": {{"hits": 900, "misses": 4800, "fallbacks": 20, "overflows": 0, "wire_bytes": 290000, "full_bytes": 3790000, "saved_bytes_ratio": {saved_ratio}, "cache_hit_rate": {hit_rate}}}
                    }},
                    "histograms": {{}}"#
                ),
            )
    }

    #[test]
    fn cold_section_adds_gates_to_compare() {
        let old = cold_digest_json("derby", 0.9, 0.16, 1_000_000);
        assert!(!compare(&old, &old).unwrap().has_regression());
        assert!(!compare_any(&old, &old).unwrap().has_regression());
        // The cache-shrink drill collapses the codec's savings: the gate
        // must name the delta ratio.
        let thrashed = cold_digest_json("derby", 0.05, 0.01, 1_000_000);
        let report = compare(&old, &thrashed).unwrap();
        assert!(report.has_regression());
        let regs = report.regressions();
        assert!(
            regs.contains(&"cold.delta.saved_bytes_ratio".to_string()),
            "{regs:?}"
        );
        // A one-sided cold section is a config mismatch, not a comparison.
        let plain = digest_json("derby", 4e9, 500, "completed");
        assert!(matches!(compare(&old, &plain), Err(DigestError::Schema(_))));
        assert!(matches!(compare(&plain, &old), Err(DigestError::Schema(_))));
    }

    fn cold_bench_json(total_ratio: f64, last_ratio: f64, saved: f64, verified: bool) -> String {
        format!(
            r#"{{
              "schema": "javmm-bench-cold-v1",
              "roster": "cold5",
              "savings": {{"total_bytes_ratio": {total_ratio}, "last_iter_bytes_ratio": {last_ratio}}},
              "delta": {{"saved_bytes_ratio": {saved}}},
              "harness": {{"verified": {verified}}}
            }}"#
        )
    }

    #[test]
    fn cold_bench_compare_gates_savings() {
        let old = cold_bench_json(0.3, 0.5, 0.9, true);
        assert!(!compare_cold_bench(&old, &old).unwrap().has_regression());
        assert!(!compare_any(&old, &old).unwrap().has_regression());
        // The one-entry-cache drill: delta savings collapse, the gate must
        // name delta.saved_bytes_ratio.
        let drilled = cold_bench_json(0.25, 0.45, 0.05, true);
        let report = compare_cold_bench(&old, &drilled).unwrap();
        assert!(report.has_regression());
        assert!(
            report
                .regressions()
                .contains(&"delta.saved_bytes_ratio".to_string()),
            "{:?}",
            report.regressions()
        );
        // A verification failure is a regression outright.
        let unverified = cold_bench_json(0.3, 0.5, 0.9, false);
        let report = compare_cold_bench(&old, &unverified).unwrap();
        assert!(report
            .regressions()
            .contains(&"harness.verified".to_string()));
        // Mismatched rosters are an error, not a comparison.
        let other = old.replace("cold5", "cold9");
        assert!(matches!(
            compare_cold_bench(&old, &other),
            Err(DigestError::Schema(_))
        ));
    }

    fn bench_json(parallel_speedup: f64, outputs_identical: bool) -> String {
        format!(
            r#"{{
              "schema": "javmm-bench-precopy-v2",
              "workers": {{"requested": null, "effective": 4, "available_parallelism": 4, "source": "detected", "capped": false, "serialized_pool": false}},
              "scan": {{"pages_per_rep": 800000, "reps": 40, "per_bit_pages_per_sec": 100000000, "word_pages_per_sec": 900000000, "speedup": 9.0, "sharded": []}},
              "alloc": {{"walks": 32, "words_per_walk": 4096, "fresh_scratch_allocs": 200, "persistent_arena_allocs": 0, "reduction": 200.0}},
              "harness": {{"cells": 24, "speedup_basis": "modeled", "serial_secs": 40.0, "rows": [], "parallel_speedup": {parallel_speedup}, "outputs_identical": {outputs_identical}}}
            }}"#
        )
    }

    #[test]
    fn bench_compare_gates_parallel_efficiency() {
        let good = bench_json(3.4, true);
        assert!(!compare_precopy_bench(&good, &good)
            .unwrap()
            .has_regression());
        // A serialized-pool build collapses the modeled speedup to ~1.0:
        // the gate must trip and name the speedup metric.
        let serialized = bench_json(1.0, true);
        let report = compare_precopy_bench(&good, &serialized).unwrap();
        assert_eq!(report.regressions(), vec!["harness.parallel_speedup"]);
        assert!(report.render().contains("harness.parallel_speedup"));
        // Losing byte-identity is a regression outright (bool gate).
        let diverged = bench_json(3.4, false);
        let report = compare_precopy_bench(&good, &diverged).unwrap();
        assert_eq!(report.regressions(), vec!["harness.outputs_identical"]);
        // A --scan-only document (harness null) cannot be gated.
        let scan_only = good.replace(r#""harness": {"cells": 24"#, r#""ignored": {"cells": 24"#);
        assert!(matches!(
            compare_precopy_bench(&good, &scan_only),
            Err(DigestError::Schema(_))
        ));
    }

    #[test]
    fn fleet_detect_accounting_handles_steady_rosters() {
        let detect = FleetDetect::from_vms(&[]);
        assert_eq!(detect.cyclic_declared, 0);
        assert_eq!(detect.window_hit_rate, 1.0);
        assert_eq!(detect.period_accuracy, 1.0);
    }

    #[test]
    fn mismatched_scenarios_and_schemas_are_errors() {
        let a = digest_json("derby", 4e9, 500, "completed");
        let b = digest_json("crypto", 4e9, 500, "completed");
        assert!(matches!(compare(&a, &b), Err(DigestError::Schema(_))));
        let bad = a.replace("javmm-run-digest-v2", "javmm-run-digest-v0");
        assert!(matches!(compare(&a, &bad), Err(DigestError::Schema(_))));
        assert!(matches!(
            compare("not json", &a),
            Err(DigestError::Parse(_, _))
        ));
    }
}
