//! XBZRLE-style delta transfer: run-length-of-XOR encoding against a
//! bounded cache of previously sent page versions.
//!
//! QEMU's XBZRLE keeps an LRU page cache on the source; when a dirty page's
//! prior contents are cached, the migration sends the run-length-encoded
//! XOR of old and new instead of the full page. This simulation carries
//! page *versions*, not contents, so the codec is modeled deterministically
//! from the version distance: each version bump corresponds to one guest
//! write of roughly [`DELTA_CHANGED_BYTES_PER_VERSION`] bytes, the encoder
//! inflates the changed bytes by the run-length framing, and a delta that
//! would not beat the full page falls back to a full send — exactly the
//! shape of the real codec's behaviour, with none of its content handling.
//!
//! The cache is bounded ([`DeltaCache::new`] takes the capacity in pages)
//! and evicts in FIFO order, which keeps eviction deterministic and
//! independent of lookup patterns. An eviction under pressure is an
//! *overflow*: the evicted page's next re-dirty will miss and pay a full
//! send, which is why the digest gate watches the saved-bytes ratio when CI
//! shrinks the cache.

use simkit::SimDuration;
use std::collections::{BTreeMap, VecDeque};
use vmem::{Pfn, PAGE_SIZE};

/// Modeled bytes changed within a page per content-version bump (one guest
/// write touches an object or cache entry, not the whole 4 KiB page).
pub const DELTA_CHANGED_BYTES_PER_VERSION: u64 = 256;

/// Fixed framing overhead of one encoded delta (offsets + lengths).
pub const DELTA_HEADER_BYTES: u64 = 16;

/// CPU time to XOR + run-length encode one page against its cached copy.
pub const DELTA_CPU_PER_PAGE: SimDuration = SimDuration::from_nanos(800);

/// Encoded body size for a delta spanning `distance` version bumps: the
/// changed bytes (capped at the page) inflated by 1/16 run-length framing,
/// plus the fixed header. Monotone in `distance`.
pub fn encoded_body(distance: u64) -> u64 {
    let changed = (distance.saturating_mul(DELTA_CHANGED_BYTES_PER_VERSION)).min(PAGE_SIZE);
    changed + changed / 16 + DELTA_HEADER_BYTES
}

/// What one cache consultation decided for a page about to be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The prior version was not cached: full send, page now cached.
    Miss,
    /// Cached and the delta wins: send `body` bytes instead of the full
    /// page body.
    Delta {
        /// Encoded delta body in bytes (page header excluded).
        body: u64,
    },
    /// Cached but the page changed too much — the encoded delta would not
    /// beat the full page, so a full send goes out (cache updated).
    Fallback,
}

/// A bounded FIFO cache of the last-sent version per page.
///
/// # Examples
///
/// ```
/// use migrate::assist::delta::{DeltaCache, DeltaOutcome};
/// use vmem::Pfn;
///
/// let mut cache = DeltaCache::new(2);
/// assert_eq!(cache.consult(Pfn(7), 1, 4096).0, DeltaOutcome::Miss);
/// // Re-dirtied once since the send: a small delta wins.
/// let (outcome, overflow) = cache.consult(Pfn(7), 2, 4096);
/// assert!(matches!(outcome, DeltaOutcome::Delta { body } if body < 4096));
/// assert!(!overflow);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaCache {
    cap: usize,
    versions: BTreeMap<u64, u64>,
    fifo: VecDeque<u64>,
}

impl DeltaCache {
    /// Creates a cache holding at most `cap` pages (`cap` ≥ 1 is enforced
    /// by config validation; a zero `cap` would evict on every insert).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            versions: BTreeMap::new(),
            fifo: VecDeque::new(),
        }
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Consults and updates the cache for a page about to be sent at
    /// `version` whose full (compressed) body would cost `full_body` bytes.
    /// Returns the outcome and whether the update evicted another page.
    pub fn consult(&mut self, pfn: Pfn, version: u64, full_body: u64) -> (DeltaOutcome, bool) {
        let outcome = match self.versions.get(&pfn.0) {
            Some(&prior) => {
                let body = encoded_body(version.saturating_sub(prior));
                if body < full_body {
                    DeltaOutcome::Delta { body }
                } else {
                    DeltaOutcome::Fallback
                }
            }
            None => DeltaOutcome::Miss,
        };
        let overflow = self.remember(pfn, version);
        (outcome, overflow)
    }

    /// Primes the cache with a page the bulk pass is sending in full: no
    /// codec run (there is nothing to delta against), just the insert, so
    /// the page's *first* re-send can already encode against the bulk
    /// version. Returns `true` when the insert evicted another page.
    pub fn prime(&mut self, pfn: Pfn, version: u64) -> bool {
        self.remember(pfn, version)
    }

    /// Records that `pfn` was sent at `version`; returns `true` when the
    /// insert evicted the oldest entry.
    fn remember(&mut self, pfn: Pfn, version: u64) -> bool {
        if self.versions.insert(pfn.0, version).is_some() {
            // Refresh in place: FIFO order is by first insertion, which
            // keeps eviction independent of the lookup pattern.
            return false;
        }
        self.fifo.push_back(pfn.0);
        if self.versions.len() > self.cap {
            // The FIFO can hold stale keys for pages re-inserted after an
            // eviction; skip those until a live entry is evicted.
            while let Some(old) = self.fifo.pop_front() {
                if self.versions.remove(&old).is_some() {
                    break;
                }
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_body_grows_with_distance_and_caps() {
        assert!(encoded_body(1) < encoded_body(4));
        assert_eq!(encoded_body(0), DELTA_HEADER_BYTES);
        // Past 16 version bumps the whole page changed; the encoding can
        // only add overhead from there.
        assert_eq!(encoded_body(16), encoded_body(1000));
        assert!(encoded_body(1000) > PAGE_SIZE);
    }

    #[test]
    fn miss_then_hit_then_fallback() {
        let mut cache = DeltaCache::new(8);
        assert_eq!(cache.consult(Pfn(3), 5, PAGE_SIZE).0, DeltaOutcome::Miss);
        let (o, _) = cache.consult(Pfn(3), 6, PAGE_SIZE);
        assert_eq!(
            o,
            DeltaOutcome::Delta {
                body: encoded_body(1)
            }
        );
        // A page rewritten end-to-end since the last send: delta loses.
        let (o, _) = cache.consult(Pfn(3), 106, PAGE_SIZE);
        assert_eq!(o, DeltaOutcome::Fallback);
    }

    #[test]
    fn fifo_eviction_is_by_first_insertion() {
        let mut cache = DeltaCache::new(2);
        cache.consult(Pfn(1), 1, PAGE_SIZE);
        cache.consult(Pfn(2), 1, PAGE_SIZE);
        // Touching pfn 1 again must not save it from being the eviction
        // victim (FIFO, not LRU).
        cache.consult(Pfn(1), 2, PAGE_SIZE);
        let (_, overflow) = cache.consult(Pfn(3), 1, PAGE_SIZE);
        assert!(overflow);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.consult(Pfn(1), 3, PAGE_SIZE).0, DeltaOutcome::Miss);
    }

    #[test]
    fn single_entry_cache_thrashes() {
        let mut cache = DeltaCache::new(1);
        cache.consult(Pfn(1), 1, PAGE_SIZE);
        assert_eq!(cache.consult(Pfn(2), 1, PAGE_SIZE).0, DeltaOutcome::Miss);
        // pfn 1 was evicted: its re-dirty misses and pays full price.
        assert_eq!(cache.consult(Pfn(1), 2, PAGE_SIZE).0, DeltaOutcome::Miss);
    }
}
