//! The cold-page assist: a second assist class beyond skip-over areas.
//!
//! The paper's one assist lets applications *exclude* dead pages (skip-over
//! areas). Much of a JVM's Old generation is the opposite: live-but-cold —
//! it must reach the destination, but it re-dirties rarely and never needs
//! to ride the hot pre-copy loop. This module gives the engine two actions
//! for such pages, driven by the cold-region map the guest exports through
//! the coordination protocol (`QueryColdMap` → `QueryColdRegions` →
//! `ColdRegions`, translated VA→PFN by the LKM):
//!
//! * **defer** — cold pages are split out of every iteration snapshot into
//!   a low-priority bulk stream that only consumes link budget the hot scan
//!   left over, so the hot working set converges as if the cold mass were
//!   not there;
//! * **delta** — a re-dirtied page whose prior version was already sent
//!   ships as an XBZRLE-style run-length-of-XOR delta against a bounded
//!   page cache ([`delta::DeltaCache`]) instead of a full copy.
//!
//! Both actions only change *when and how* cold pages ride the link, never
//! *whether*: the destination receives every live page and verification
//! stays page-for-page exact. With the assist disabled (the default) the
//! engine allocates nothing, sends no extra protocol message, and produces
//! byte-identical digests — locked by the inertness goldens.

pub mod delta;

use crate::error::ConfigError;
use delta::DeltaCache;
use vmem::Bitmap;

/// Configuration of the cold-page assist. Disabled by default; enabling
/// either action requires the assisted protocol (the cold map arrives via
/// the LKM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdAssistConfig {
    /// Split cold pages out of the hot iterations into a low-priority bulk
    /// stream.
    pub defer: bool,
    /// Delta-encode re-dirtied cold pages against the page cache.
    pub delta: bool,
    /// Capacity of the per-VM delta page cache, in pages. Must be ≥ 1 when
    /// `delta` is on.
    pub delta_cache_pages: usize,
}

impl Default for ColdAssistConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl ColdAssistConfig {
    /// Both actions off — the engine's zero-config path.
    pub fn off() -> Self {
        Self {
            defer: false,
            delta: false,
            delta_cache_pages: 16_384,
        }
    }

    /// Both actions on with the default cache size.
    pub fn full() -> Self {
        Self {
            defer: true,
            delta: true,
            ..Self::off()
        }
    }

    /// `true` when any cold action is configured.
    pub fn enabled(&self) -> bool {
        self.defer || self.delta
    }

    /// Checks the invariants [`crate::config::MigrationConfig::validate`]
    /// enforces for the cold assist.
    pub fn validate(&self, assisted: bool) -> Result<(), ConfigError> {
        if self.enabled() && !assisted {
            return Err(ConfigError::ColdRequiresAssist);
        }
        if self.delta && self.delta_cache_pages == 0 {
            return Err(ConfigError::ZeroDeltaCache);
        }
        Ok(())
    }
}

/// What the cold assist did during one migration; carried in
/// [`crate::report::MigrationReport::cold`] and folded into the run digest
/// (schema v3) when present.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColdReport {
    /// Distinct pages the engine ever classified cold.
    pub cold_pages: u64,
    /// Page moves out of hot snapshots into the bulk stream (a page
    /// re-dirtied across iterations is counted once per move).
    pub deferred_pages: u64,
    /// Pages the bulk stream transferred during live iterations.
    pub deferred_sent_pages: u64,
    /// Wire bytes of those bulk-stream transfers.
    pub deferred_sent_bytes: u64,
    /// Cold pages still pending when the VM paused (they joined the
    /// stop-and-copy set).
    pub pending_at_pause: u64,
    /// Delta-cache consultations that found the prior version cached and
    /// shipped a delta.
    pub delta_hits: u64,
    /// Consultations that found nothing cached (full send, now cached).
    pub delta_misses: u64,
    /// Cached consultations whose encoded delta would not beat the full
    /// page (full send).
    pub delta_fallbacks: u64,
    /// Cache inserts that evicted another page (capacity pressure).
    pub delta_overflows: u64,
    /// Wire bytes actually sent for the delta-hit pages.
    pub delta_wire_bytes: u64,
    /// Wire bytes those same sends would have cost as full pages.
    pub delta_full_bytes: u64,
}

impl ColdReport {
    /// Fraction of the would-be full-page bytes the delta codec saved:
    /// `1 - wire/full` over the delta-hit sends, 0.0 when none happened.
    pub fn saved_bytes_ratio(&self) -> f64 {
        if self.delta_full_bytes == 0 {
            0.0
        } else {
            1.0 - self.delta_wire_bytes as f64 / self.delta_full_bytes as f64
        }
    }

    /// Delta-cache hit rate over all consultations (hits + fallbacks count
    /// as cached), 0.0 before any consultation.
    pub fn cache_hit_rate(&self) -> f64 {
        let cached = self.delta_hits + self.delta_fallbacks;
        let total = cached + self.delta_misses;
        if total == 0 {
            0.0
        } else {
            cached as f64 / total as f64
        }
    }
}

/// Engine-side state of one migration's cold assist. `None` in
/// `RunState` when the assist is off — the disabled path must not even
/// allocate.
#[derive(Debug)]
pub(crate) struct ColdState {
    /// Pages adopted as cold from the LKM's cold bitmap.
    pub map: Bitmap,
    /// Cold pages awaiting their bulk-stream send (defer action only).
    pub pending: Bitmap,
    /// The delta page cache (delta action only).
    pub delta: Option<DeltaCache>,
    /// Whether the defer action is on.
    pub defer: bool,
    /// LKM cold bits already adopted; a cheap popcount guard that skips
    /// the word-wise adoption diff when nothing new arrived.
    pub adopted_bits: u64,
    /// Running counters for the report.
    pub report: ColdReport,
}

impl ColdState {
    pub(crate) fn new(npages: u64, config: &ColdAssistConfig) -> Self {
        Self {
            map: Bitmap::new(npages),
            pending: Bitmap::new(npages),
            delta: config
                .delta
                .then(|| DeltaCache::new(config.delta_cache_pages)),
            defer: config.defer,
            adopted_bits: 0,
            report: ColdReport::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_gates() {
        assert!(!ColdAssistConfig::off().enabled());
        assert!(ColdAssistConfig::full().enabled());
        assert!(ColdAssistConfig::off().validate(false).is_ok());
        assert_eq!(
            ColdAssistConfig::full().validate(false),
            Err(ConfigError::ColdRequiresAssist)
        );
        let bad = ColdAssistConfig {
            delta_cache_pages: 0,
            ..ColdAssistConfig::full()
        };
        assert_eq!(bad.validate(true), Err(ConfigError::ZeroDeltaCache));
        assert!(ColdAssistConfig::full().validate(true).is_ok());
    }

    #[test]
    fn report_ratios() {
        let r = ColdReport {
            delta_hits: 3,
            delta_misses: 1,
            delta_wire_bytes: 1000,
            delta_full_bytes: 4000,
            ..ColdReport::default()
        };
        assert!((r.saved_bytes_ratio() - 0.75).abs() < 1e-12);
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ColdReport::default().saved_bytes_ratio(), 0.0);
        assert_eq!(ColdReport::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn state_allocates_per_action() {
        let s = ColdState::new(64, &ColdAssistConfig::full());
        assert!(s.delta.is_some());
        assert!(s.defer);
        let defer_only = ColdAssistConfig {
            delta: false,
            ..ColdAssistConfig::full()
        };
        assert!(ColdState::new(64, &defer_only).delta.is_none());
    }
}
