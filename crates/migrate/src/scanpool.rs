//! Sharded, double-buffered scan/classify pipeline for the pre-copy engine.
//!
//! The word-granular scanner (see [`crate::precopy`]) classifies every
//! snapshot word into sends and skips from three inputs: the iteration
//! snapshot `ts`, the hypervisor dirty log `d` and the LKM transfer bitmap
//! `t`. That classification is a pure function of the three words — which
//! makes it shardable by bitmap region and overlappable with the link
//! transfer, *without* changing a single reported byte:
//!
//! * **Sharding.** [`ScanPool::classify_chunk`] and [`ScanPool::sum_shards`]
//!   split a word range into contiguous near-equal shards, run them on
//!   scoped worker threads and merge in shard (= input) order. Popcounts
//!   are sums over a partition and classification writes disjoint output
//!   slices, so the result is identical to the serial left-to-right pass
//!   for *any* shard count — the property `tests/bitmap_words.rs` proptests.
//!
//! * **Overlap.** The engine walks classified chunks ([`ChunkBuf`]) instead
//!   of reading the bitmaps per word. While the engine thread transmits the
//!   pages of the *current* chunk, a pipeline thread classifies the *next*
//!   one from pre-staged word copies ([`ScanScratch::ensure`]) — the
//!   double-buffered scan↔transfer overlap. The guest only runs between
//!   quanta, so within a quantum the staged words equal what per-word reads
//!   would return; chunks are discarded at every quantum boundary (and at
//!   waiting-mode snapshot refreshes), so a chunk never carries stale words
//!   across a guest execution slice.
//!
//! * **Determinism.** Which chunks get classified, and every telemetry
//!   count, is decided by walk history alone — identical at every worker
//!   count. The pool only changes *who* does the work: with one worker the
//!   same chunks are classified inline at the same decision points. Totals
//!   merge through [`simkit::telemetry::ShardLedger`], whose per-worker
//!   cells fold worker-count-independently.
//!
//! Setting `JAVMM_SERIALIZE_POOL=1` forces every pool inline regardless of
//! the configured worker count — the CI drill that proves the parallel
//! regression gate actually fires.

use simkit::telemetry::ShardLedger;
use simkit::{Recorder, Subsystem};
use std::ops::Range;
use std::sync::OnceLock;

/// Words per classified chunk (4096 pages). Small enough that the work
/// discarded at a quantum boundary is negligible next to the quantum's page
/// transfers, large enough that a sparse-sweep quantum crosses several
/// chunks and keeps the prefetch pipeline busy.
pub const CHUNK_WORDS: usize = 64;

/// Minimum words per shard before the pool spawns threads; below this the
/// fixed cost of a thread outweighs the classify/popcount work and the pool
/// runs the range inline. The *values* computed are identical either way —
/// this gate is a pure scheduling decision.
pub const MIN_SHARD_WORDS: usize = 2048;

/// Counter names the scan pipeline accumulates into its [`ShardLedger`];
/// flushed under [`Subsystem::Engine`] when the run finishes.
pub const LEDGER_COUNTERS: &[&str] = &[
    "scan_chunks",
    "scan_words_classified",
    "scan_words_prefetched",
];
pub(crate) const ROW_CHUNKS: usize = 0;
pub(crate) const ROW_WORDS: usize = 1;
pub(crate) const ROW_PREFETCH: usize = 2;

/// Whether `JAVMM_SERIALIZE_POOL` forces every scan pool inline (cached on
/// first use). Used by the CI seeded drill: a serialized build must fail
/// the bench parallel-efficiency gate.
pub fn pool_serialized() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("JAVMM_SERIALIZE_POOL")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// One snapshot word, classified: the three disjoint masks the walk needs.
/// `sends | skips_transfer | skips_dirty` reassembles the snapshot word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WordClass {
    /// `ts & t & !d` — pages to put on the wire.
    pub sends: u64,
    /// `ts & !t` — pages the LKM's transfer bitmap vetoes (deferred skips).
    pub skips_transfer: u64,
    /// `ts & t & d` — pages already re-dirtied (Xen's redundancy skip).
    pub skips_dirty: u64,
}

/// Classifies a word range element-wise: `out[i]` from `ts[i]`, `d[i]` and
/// `t[i]` (`None` behaves as all-ones — vanilla/degraded runs transfer
/// everything the dirty log allows). The serial reference the sharded path
/// must match bit-for-bit.
pub fn classify_range(out: &mut [WordClass], ts: &[u64], d: &[u64], t: Option<&[u64]>) {
    debug_assert_eq!(out.len(), ts.len());
    debug_assert_eq!(out.len(), d.len());
    for (i, slot) in out.iter_mut().enumerate() {
        let w = ts[i];
        let dw = d[i];
        let tw = t.map_or(u64::MAX, |t| t[i]);
        slot.skips_transfer = w & !tw;
        slot.skips_dirty = w & tw & dw;
        slot.sends = w & tw & !dw;
    }
}

/// The contiguous word range shard `i` of `shards` covers in `0..len`:
/// near-equal sizes, earlier shards take the remainder. The shards
/// partition the range, which is what makes every sharded fold exact.
pub fn shard_range(len: usize, shards: usize, i: usize) -> Range<usize> {
    debug_assert!(i < shards);
    let base = len / shards;
    let extra = len % shards;
    let start = i * base + i.min(extra);
    let size = base + usize::from(i < extra);
    start..start + size
}

/// A pool of scan workers. Stateless apart from its size: shard work is
/// carried by scoped threads (borrowing the caller's slices) or, for the
/// prefetch pipeline, by an owned-buffer handoff thread — there are no
/// long-lived worker threads to keep in sync with the simulation.
#[derive(Debug, Clone)]
pub struct ScanPool {
    workers: usize,
}

impl ScanPool {
    /// A pool with (at least one) `requested` workers;
    /// `JAVMM_SERIALIZE_POOL` collapses any request to one.
    pub fn new(requested: usize) -> Self {
        let workers = if pool_serialized() {
            1
        } else {
            requested.max(1)
        };
        ScanPool { workers }
    }

    /// Worker count after the serialize override.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// How many shards a range of `len` words is worth: the full worker
    /// count when every shard clears [`MIN_SHARD_WORDS`], else one.
    fn effective_shards(&self, len: usize) -> usize {
        if self.workers > 1 && len >= self.workers * MIN_SHARD_WORDS {
            self.workers
        } else {
            1
        }
    }

    /// Folds `f` over the shard ranges of `0..len` and sums the results —
    /// the parallel skeleton behind `pending_transferable` and the
    /// stop-and-copy skip count. Addition over `u64` is associative and
    /// commutative, so the sum equals the serial `f(0..len)` exactly.
    pub fn sum_shards<F>(&self, len: usize, f: F) -> u64
    where
        F: Fn(Range<usize>) -> u64 + Sync,
    {
        let shards = self.effective_shards(len);
        if shards <= 1 {
            return f(0..len);
        }
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..shards)
                .map(|i| {
                    let r = shard_range(len, shards, i);
                    s.spawn(move || f(r))
                })
                .collect();
            let mut total = f(shard_range(len, shards, 0));
            for h in handles {
                total += h.join().expect("scan shard panicked");
            }
            total
        })
    }

    /// Classifies one chunk, sharded across the pool when large enough.
    /// Workers write disjoint `out` shards (input order is the merge), and
    /// each bumps its own [`ShardLedger`] cell so the folded word total is
    /// worker-count-independent.
    pub fn classify_chunk(
        &self,
        out: &mut [WordClass],
        ts: &[u64],
        d: &[u64],
        t: Option<&[u64]>,
        ledger: &mut ShardLedger,
    ) {
        let len = out.len();
        let shards = self.effective_shards(len);
        if shards <= 1 {
            classify_range(out, ts, d, t);
            ledger.add(0, ROW_WORDS, len as u64);
            return;
        }
        std::thread::scope(|s| {
            let mut rest = out;
            let mut rows = ledger.rows_mut();
            let mut handles = Vec::with_capacity(shards - 1);
            for i in 0..shards {
                let r = shard_range(len, shards, i);
                let (shard_out, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let row = rows.next().expect("ledger narrower than pool");
                let ts_s = &ts[r.clone()];
                let d_s = &d[r.clone()];
                let t_s = t.map(|t| &t[r.clone()]);
                if i == 0 {
                    // The engine thread takes the first shard itself.
                    classify_range(shard_out, ts_s, d_s, t_s);
                    row[ROW_WORDS] += r.len() as u64;
                } else {
                    handles.push(s.spawn(move || {
                        classify_range(shard_out, ts_s, d_s, t_s);
                        row[ROW_WORDS] += r.len() as u64;
                    }));
                }
            }
            for h in handles {
                h.join().expect("scan shard panicked");
            }
        });
    }
}

/// A classified chunk: `classes[i]` covers snapshot word `start + i`.
/// `len == 0` means invalid; the backing vector keeps its capacity across
/// invalidations so steady-state scanning allocates nothing.
#[derive(Debug, Default)]
struct ChunkBuf {
    start: usize,
    len: usize,
    classes: Vec<WordClass>,
}

impl ChunkBuf {
    fn covers(&self, wi: usize) -> bool {
        self.len > 0 && wi >= self.start && wi < self.start + self.len
    }
}

/// Owned buffers handed to a prefetch thread and recovered on join: the
/// staged input words plus the output chunk. Ownership transfer (instead of
/// borrows) is what lets the classification run while the engine thread
/// keeps full mutable access to the snapshot and the run state.
struct ChunkStorage {
    start: usize,
    len: usize,
    ts: Vec<u64>,
    d: Vec<u64>,
    t: Vec<u64>,
    t_present: bool,
    classes: Vec<WordClass>,
}

/// Reusable per-session scan state: the double-buffered chunk pair, the
/// staging arenas for prefetch handoff, the in-flight prefetch handle and
/// the per-worker telemetry ledger. One instance lives on each
/// [`MigrationSession`](crate::precopy::MigrationSession) and is recycled
/// across iterations — the scan hot path performs no steady-state
/// allocation (locked by the bench's allocation micro-bench).
pub struct ScanScratch {
    pool: ScanPool,
    cur: ChunkBuf,
    next: ChunkBuf,
    stage_ts: Vec<u64>,
    stage_d: Vec<u64>,
    stage_t: Vec<u64>,
    inflight: Option<std::thread::JoinHandle<ChunkStorage>>,
    ledger: ShardLedger,
    /// Distinct chunks the walk entered this quantum; > 1 means the scan is
    /// sweeping faster than one chunk per quantum, which arms the prefetch
    /// for the next quantum. Pure walk history — identical at every worker
    /// count, so the classified-word counters are too.
    chunks_entered: u64,
    prefetch_armed: bool,
}

impl std::fmt::Debug for ScanScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanScratch")
            .field("pool", &self.pool)
            .field("prefetch_armed", &self.prefetch_armed)
            .finish_non_exhaustive()
    }
}

impl ScanScratch {
    /// Scratch for a pool of `workers`.
    pub fn new(workers: usize) -> Self {
        let pool = ScanPool::new(workers);
        let ledger = ShardLedger::new(LEDGER_COUNTERS, pool.workers());
        ScanScratch {
            pool,
            cur: ChunkBuf::default(),
            next: ChunkBuf::default(),
            stage_ts: Vec::new(),
            stage_d: Vec::new(),
            stage_t: Vec::new(),
            inflight: None,
            ledger,
            chunks_entered: 0,
            prefetch_armed: false,
        }
    }

    /// The pool this scratch schedules on.
    pub fn pool(&self) -> &ScanPool {
        &self.pool
    }

    /// Joins a finished prefetch (if any) and adopts its chunk as `next`.
    fn absorb_inflight(&mut self) {
        if let Some(handle) = self.inflight.take() {
            let storage = handle.join().expect("prefetch classifier panicked");
            self.next.start = storage.start;
            self.next.len = storage.len;
            self.next.classes = storage.classes;
            self.stage_ts = storage.ts;
            self.stage_d = storage.d;
            self.stage_t = storage.t;
        }
    }

    /// Drops all classified state (buffer capacity is retained). Required
    /// whenever the inputs may have changed under the chunks: at every
    /// quantum boundary (the guest ran) and at waiting-mode snapshot
    /// refreshes (the snapshot was replaced).
    pub fn invalidate(&mut self) {
        self.absorb_inflight();
        self.cur.len = 0;
        self.next.len = 0;
    }

    /// Quantum-boundary bookkeeping: invalidate, and arm the prefetch for
    /// the coming quantum iff the previous one crossed chunk boundaries.
    pub fn begin_quantum(&mut self) {
        self.invalidate();
        self.prefetch_armed = self.chunks_entered > 1;
        self.chunks_entered = 0;
    }

    /// Makes the chunk covering word `wi` current, classifying it (and,
    /// when armed, prefetching its successor on a pipeline thread) from
    /// this quantum's frozen inputs. `ts`/`d`/`t` are the snapshot, dirty
    /// and transfer words; `t: None` means assistance is off.
    pub fn ensure(&mut self, wi: usize, ts: &[u64], d: &[u64], t: Option<&[u64]>) {
        if self.cur.covers(wi) {
            return;
        }
        self.chunks_entered += 1;
        self.absorb_inflight();
        if self.next.covers(wi) {
            std::mem::swap(&mut self.cur, &mut self.next);
            self.next.len = 0;
        } else {
            self.next.len = 0;
            let len = CHUNK_WORDS.min(ts.len() - wi);
            self.cur.start = wi;
            self.cur.len = len;
            self.cur.classes.clear();
            self.cur.classes.resize(len, WordClass::default());
            let r = wi..wi + len;
            self.pool.classify_chunk(
                &mut self.cur.classes,
                &ts[r.clone()],
                &d[r.clone()],
                t.map(|t| &t[r]),
                &mut self.ledger,
            );
            self.ledger.add(0, ROW_CHUNKS, 1);
        }
        if self.prefetch_armed {
            self.prefetch(ts, d, t);
        }
    }

    /// Starts classifying the chunk after `cur`. The decision, the staged
    /// range and the counter bumps are identical at every worker count;
    /// only the execution differs — inline with one worker, on a handoff
    /// thread (overlapping the engine's transmit walk) otherwise.
    fn prefetch(&mut self, ts: &[u64], d: &[u64], t: Option<&[u64]>) {
        let start = self.cur.start + self.cur.len;
        if start >= ts.len() {
            return;
        }
        let len = CHUNK_WORDS.min(ts.len() - start);
        let r = start..start + len;
        self.ledger.add(0, ROW_CHUNKS, 1);
        self.ledger.add(0, ROW_WORDS, len as u64);
        self.ledger.add(0, ROW_PREFETCH, len as u64);
        if self.pool.workers() > 1 {
            self.stage_ts.clear();
            self.stage_ts.extend_from_slice(&ts[r.clone()]);
            self.stage_d.clear();
            self.stage_d.extend_from_slice(&d[r.clone()]);
            self.stage_t.clear();
            if let Some(t) = t {
                self.stage_t.extend_from_slice(&t[r]);
            }
            let mut classes = std::mem::take(&mut self.next.classes);
            classes.clear();
            classes.resize(len, WordClass::default());
            let mut storage = ChunkStorage {
                start,
                len,
                ts: std::mem::take(&mut self.stage_ts),
                d: std::mem::take(&mut self.stage_d),
                t: std::mem::take(&mut self.stage_t),
                t_present: t.is_some(),
                classes,
            };
            self.next.len = 0;
            self.inflight = Some(std::thread::spawn(move || {
                let t = storage.t_present.then_some(storage.t.as_slice());
                classify_range(&mut storage.classes, &storage.ts, &storage.d, t);
                storage
            }));
        } else {
            self.next.start = start;
            self.next.len = len;
            self.next.classes.clear();
            self.next.classes.resize(len, WordClass::default());
            classify_range(
                &mut self.next.classes,
                &ts[r.clone()],
                &d[r.clone()],
                t.map(|t| &t[r]),
            );
        }
    }

    /// The classification of word `wi`, which must be covered by the
    /// current chunk (callers go through [`ScanScratch::ensure`] first).
    pub fn class_at(&self, wi: usize) -> WordClass {
        debug_assert!(self.cur.covers(wi));
        self.cur.classes[wi - self.cur.start]
    }

    /// Folds the per-worker counters into `recorder` (deterministic worker
    /// order) and resets them; called once when the run finishes.
    pub fn flush_telemetry(&mut self, recorder: &Recorder) {
        self.absorb_inflight();
        self.ledger.flush(recorder, Subsystem::Engine);
    }
}

impl Drop for ScanScratch {
    fn drop(&mut self) {
        // Never leak a detached classifier past the session's lifetime.
        self.absorb_inflight();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, len: usize) -> Vec<u64> {
        // Cheap deterministic word soup (splitmix64).
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn shard_ranges_partition_the_input() {
        for &(len, shards) in &[(0usize, 1usize), (1, 4), (63, 3), (8192, 4), (1000, 7)] {
            let mut next = 0;
            for i in 0..shards {
                let r = shard_range(len, shards, i);
                assert_eq!(
                    r.start, next,
                    "gap/overlap at shard {i} of {shards} over {len}"
                );
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn sharded_classify_matches_serial_reference() {
        let len = 4 * MIN_SHARD_WORDS; // big enough to actually thread
        let ts = words(1, len);
        let d = words(2, len);
        let t = words(3, len);

        let mut serial = vec![WordClass::default(); len];
        classify_range(&mut serial, &ts, &d, Some(&t));

        let pool = ScanPool::new(4);
        let mut ledger = ShardLedger::new(LEDGER_COUNTERS, pool.workers());
        let mut sharded = vec![WordClass::default(); len];
        pool.classify_chunk(&mut sharded, &ts, &d, Some(&t), &mut ledger);

        assert_eq!(serial, sharded);
        assert_eq!(ledger.total(ROW_WORDS), len as u64);
    }

    #[test]
    fn sum_shards_matches_serial_fold() {
        let len = 4 * MIN_SHARD_WORDS;
        let a = words(7, len);
        let b = words(8, len);
        let f = |r: Range<usize>| -> u64 {
            a[r.clone()]
                .iter()
                .zip(&b[r])
                .map(|(x, y)| (x & y).count_ones() as u64)
                .sum()
        };
        let serial = f(0..len);
        for workers in [1usize, 2, 3, 4, 8] {
            assert_eq!(ScanPool::new(workers).sum_shards(len, f), serial);
        }
    }

    #[test]
    fn word_class_masks_partition_the_snapshot_word() {
        let ts = words(11, 256);
        let d = words(12, 256);
        let t = words(13, 256);
        let mut out = vec![WordClass::default(); 256];
        classify_range(&mut out, &ts, &d, Some(&t));
        for (i, c) in out.iter().enumerate() {
            assert_eq!(c.sends | c.skips_transfer | c.skips_dirty, ts[i]);
            assert_eq!(c.sends & c.skips_transfer, 0);
            assert_eq!(c.sends & c.skips_dirty, 0);
            assert_eq!(c.skips_transfer & c.skips_dirty, 0);
        }
    }

    #[test]
    fn scratch_pipeline_matches_direct_reads_across_worker_counts() {
        let nwords = 3 * CHUNK_WORDS + 17;
        let ts = words(21, nwords);
        let d = words(22, nwords);
        let t = words(23, nwords);

        let mut reference = vec![WordClass::default(); nwords];
        classify_range(&mut reference, &ts, &d, Some(&t));

        for workers in [1usize, 2, 4] {
            let mut scratch = ScanScratch::new(workers);
            // Two "quanta", the second armed for prefetch by the first
            // having crossed chunks.
            scratch.begin_quantum();
            for (wi, want) in reference.iter().enumerate() {
                scratch.ensure(wi, &ts, &d, Some(&t));
                assert_eq!(scratch.class_at(wi), *want, "worker={workers} wi={wi}");
            }
            scratch.begin_quantum();
            assert!(scratch.prefetch_armed);
            for wi in (0..nwords).step_by(3) {
                scratch.ensure(wi, &ts, &d, Some(&t));
                assert_eq!(scratch.class_at(wi), reference[wi]);
            }
        }
    }
}
