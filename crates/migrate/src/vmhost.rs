//! The contract between the migration engine and a migratable VM.

use guestos::kernel::GuestKernel;
use guestos::lkm::DaemonPort;
use simkit::{FaultPlan, Recorder, SimDuration, SimTime};

/// A VM the engine can migrate.
///
/// The engine owns the clock and drives the VM in quanta; between page
/// transfers it calls [`MigratableVm::advance_guest`] so guest execution
/// (workloads, GCs, kernel noise, LKM servicing) proceeds concurrently, and
/// it stops calling it while the VM is paused for the stop-and-copy.
pub trait MigratableVm {
    /// Immutable access to the guest kernel.
    fn kernel(&self) -> &GuestKernel;

    /// Mutable access to the guest kernel (dirty-log control, page reads).
    fn kernel_mut(&mut self) -> &mut GuestKernel;

    /// Advances guest execution by `dt` starting at `now`. Must service the
    /// LKM and record application throughput.
    fn advance_guest(&mut self, now: SimTime, dt: SimDuration);

    /// Total operations the guest's workload has completed.
    fn ops_completed(&self) -> u64;

    /// The daemon's event-channel endpoint to the guest LKM, if one is
    /// loaded. Required for assisted migration.
    fn daemon_port(&self) -> Option<DaemonPort>;

    /// Duration of the enforced minor GC performed for the in-flight
    /// migration, if the guest ran one (used for the downtime breakdown).
    fn enforced_gc_duration(&self) -> Option<SimDuration>;

    /// Attaches a telemetry recorder to the guest stack.
    ///
    /// The default wires up the kernel (and thereby the LKM, if loaded);
    /// implementations with richer stacks override to also attach their
    /// JVMs and other instrumented components.
    fn attach_telemetry(&mut self, recorder: Recorder) {
        self.kernel_mut().attach_telemetry(recorder);
    }

    /// Installs the guest-side parts of a fault plan (transport lane faults,
    /// agent stalls, GC overruns) before the migration begins.
    ///
    /// The default ignores the plan; implementations with coordination
    /// transports and agents override it. Must be a strict no-op when
    /// `!plan.is_active()` so a zero plan leaves runs bit-for-bit identical.
    fn install_faults(&mut self, plan: &FaultPlan) {
        let _ = plan;
    }
}
