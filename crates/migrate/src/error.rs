//! Typed errors and outcomes for the migration engine.
//!
//! The engine's entry points return `Result<MigrationReport, MigrateError>`:
//! unrecoverable conditions (a missing LKM for an assisted run, a dead link,
//! an exhausted coordination handshake with [`FallbackPolicy::Fail`]) are
//! errors; recoverable ones degrade the run to vanilla pre-copy and surface
//! as [`MigrationOutcome::DegradedVanilla`] in the report instead.
//!
//! [`FallbackPolicy::Fail`]: crate::config::FallbackPolicy::Fail

use simkit::{FaultKind, SimDuration};

/// A rejected [`MigrationConfig`](crate::config::MigrationConfig) or
/// [`builder`](crate::config::MigrationConfigBuilder) field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The co-simulation quantum must be non-zero.
    ZeroQuantum,
    /// The link bandwidth must be positive.
    NonPositiveBandwidth,
    /// The stop policy needs at least one live iteration.
    ZeroIterations,
    /// The traffic cap multiple must be positive.
    NonPositiveTrafficFactor,
    /// Coordination timeouts must be non-zero.
    ZeroCoordTimeout,
    /// The retry backoff multiplier must be at least 1.
    BackoffBelowOne,
    /// The fault plan is self-contradictory (e.g. a negative link factor
    /// or an out-of-range probability).
    InvalidFaultPlan,
    /// The scan pool needs at least one worker.
    ZeroScanWorkers,
    /// The cold assist needs the assisted protocol: the cold-region map
    /// arrives through the LKM.
    ColdRequiresAssist,
    /// The delta action needs a page cache of at least one entry.
    ZeroDeltaCache,
    /// A host drain needs at least one tenant.
    EmptyRoster,
    /// The guest tick must be non-zero.
    ZeroTick,
    /// The dirty-rate sensing cadence must be a non-zero multiple of the
    /// guest tick (sensing must never change the guest's stepping).
    SenseCadenceMisaligned,
    /// Admission control needs room for at least one in-flight migration.
    ZeroConcurrency,
    /// A tenant's fair-share weight must be positive and finite.
    NonPositiveWeight,
    /// A destination host must offer at least one placement slot.
    ZeroDestinationSlots,
    /// The destination pool is smaller than the evacuating VM population,
    /// so some VM could never be placed and the drain would deadlock.
    InsufficientDestinationCapacity,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            Self::ZeroQuantum => "co-simulation quantum must be non-zero",
            Self::NonPositiveBandwidth => "link bandwidth must be positive",
            Self::ZeroIterations => "stop policy needs at least one live iteration",
            Self::NonPositiveTrafficFactor => "traffic cap multiple must be positive",
            Self::ZeroCoordTimeout => "coordination timeouts must be non-zero",
            Self::BackoffBelowOne => "retry backoff multiplier must be >= 1",
            Self::InvalidFaultPlan => "fault plan is invalid",
            Self::ZeroScanWorkers => "scan pool needs at least one worker",
            Self::ColdRequiresAssist => "cold assist requires the assisted protocol",
            Self::ZeroDeltaCache => "delta page cache needs at least one entry",
            Self::EmptyRoster => "host drain needs at least one tenant",
            Self::ZeroTick => "guest tick must be non-zero",
            Self::SenseCadenceMisaligned => {
                "sense cadence must be a non-zero multiple of the guest tick"
            }
            Self::ZeroConcurrency => "admission control needs max_concurrent >= 1",
            Self::NonPositiveWeight => "tenant fair-share weight must be positive and finite",
            Self::ZeroDestinationSlots => "destination host needs at least one slot",
            Self::InsufficientDestinationCapacity => {
                "destination slots cannot hold the evacuating VM population"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// The coordination phase a timeout fired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordPhase {
    /// Waiting for the LKM to acknowledge `MigrationBegin`.
    BeginAck,
    /// Waiting for `ReadyToSuspend` after `EnteringLastIter`.
    Ready,
}

impl CoordPhase {
    /// Stable lower-case name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::BeginAck => "begin_ack",
            Self::Ready => "ready",
        }
    }
}

/// Why a migration could not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// Assisted migration was requested but the guest has no LKM loaded.
    MissingLkm,
    /// The migration link went down (fault-injected zero bandwidth).
    LinkDown,
    /// A coordination handshake exhausted its retries and the fallback
    /// policy forbids degradation.
    CoordTimeout {
        /// The phase whose deadline expired.
        phase: CoordPhase,
        /// Total time spent waiting, including all retries.
        waited: SimDuration,
    },
    /// The configuration was rejected.
    Config(ConfigError),
}

impl core::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::MissingLkm => f.write_str("assisted migration requires a loaded LKM"),
            Self::LinkDown => f.write_str("migration link is down"),
            Self::CoordTimeout { phase, waited } => write!(
                f,
                "coordination timeout in {} phase after {waited}",
                phase.name()
            ),
            Self::Config(e) => write!(f, "invalid migration config: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<ConfigError> for MigrateError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

/// How a completed migration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// The requested protocol ran to completion.
    Completed,
    /// The assisted protocol was abandoned mid-run — skip-over areas were
    /// dropped and the migration completed as vanilla Xen pre-copy.
    DegradedVanilla {
        /// The fault that triggered the fallback.
        fault: FaultKind,
    },
}

impl MigrationOutcome {
    /// `true` when the run fell back to vanilla pre-copy.
    pub fn is_degraded(self) -> bool {
        matches!(self, Self::DegradedVanilla { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = MigrateError::CoordTimeout {
            phase: CoordPhase::BeginAck,
            waited: SimDuration::from_millis(350),
        };
        let s = format!("{e}");
        assert!(s.contains("begin_ack"), "{s}");
        assert!(format!("{}", MigrateError::MissingLkm).contains("LKM"));
        assert_eq!(
            format!("{}", MigrateError::Config(ConfigError::ZeroQuantum)),
            "invalid migration config: co-simulation quantum must be non-zero"
        );
    }

    #[test]
    fn outcome_degraded_flag() {
        assert!(!MigrationOutcome::Completed.is_degraded());
        assert!(MigrationOutcome::DegradedVanilla {
            fault: FaultKind::ReadyTimeout
        }
        .is_degraded());
    }
}
