//! Adaptive strategy selection: when (not) to use JAVMM.
//!
//! §6 of the paper identifies workload scenarios where JAVMM should be used
//! "with consideration of the resulting application downtime": long minor
//! GCs, high object survival, and read-intensive workloads. It proposes
//! incorporating this knowledge back into the system — in the simplest
//! form, turning JAVMM off and using traditional pre-copy for those
//! scenarios. This module implements that policy: estimate the downtime of
//! both strategies from observable workload characteristics and pick the
//! smaller.

use crate::assist::ColdAssistConfig;
use simkit::units::Bandwidth;
use simkit::SimDuration;

/// What an assisted migration does with a page the application flagged.
///
/// The paper's protocol has a single action — *skip* garbage-collectable
/// pages outright. The cold-page assist adds two weaker ones for pages
/// that must still arrive but rarely change: *defer* them to a
/// low-priority bulk stream that yields to hot iterations, and send
/// re-dirtied ones as an XBZRLE-style *delta* against the version the
/// destination already holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssistAction {
    /// Drop the page entirely; the destination reconstructs it (skip-over
    /// areas: garbage, free lists, evictable cache).
    Skip,
    /// Ship the page once, late, in the cold bulk stream.
    Defer,
    /// Ship a run-length-of-XOR delta when a prior version was already
    /// sent ([`crate::assist::delta`]).
    Delta,
}

impl AssistAction {
    /// Stable lower-case name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::Skip => "skip",
            Self::Defer => "defer",
            Self::Delta => "delta",
        }
    }

    /// The actions an assisted run with `cold` enables, in the order the
    /// engine applies them. `Skip` is always available — it is the paper's
    /// baseline protocol; the cold actions join it per the config.
    pub fn enabled(cold: &ColdAssistConfig) -> Vec<AssistAction> {
        let mut actions = vec![Self::Skip];
        if cold.defer {
            actions.push(Self::Defer);
        }
        if cold.delta {
            actions.push(Self::Delta);
        }
        actions
    }
}

/// Observable characteristics of the candidate VM's workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProbe {
    /// VM memory size in bytes.
    pub vm_bytes: u64,
    /// Committed Young generation size.
    pub young_committed: u64,
    /// Young-generation allocation rate, bytes/second.
    pub alloc_rate: f64,
    /// Non-Young dirty rate (Old gen working set + OS), bytes/second.
    pub other_dirty_rate: f64,
    /// Size of the non-Young working set being rewritten, bytes.
    pub other_ws_bytes: u64,
    /// Expected live data surviving an enforced minor GC, bytes.
    pub expected_survivors: u64,
    /// Expected duration of a minor GC at the current Young size.
    pub minor_gc_duration: SimDuration,
    /// Migration link bandwidth.
    pub bandwidth: Bandwidth,
    /// Destination resumption time.
    pub resume_time: SimDuration,
}

/// The strategy chosen for a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Traditional pre-copy (vanilla Xen).
    Precopy,
    /// Application-assisted migration with the enforced GC.
    Javmm,
}

/// Estimated downtimes behind a [`Strategy`] decision.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Estimated workload downtime under vanilla pre-copy.
    pub precopy_downtime: SimDuration,
    /// Estimated workload downtime under JAVMM.
    pub javmm_downtime: SimDuration,
}

/// Solves for the equilibrium dirty residue of an iterative pre-copy.
///
/// One iteration of duration `d` accumulates `rate x d` dirty bytes in each
/// region, capped by the region's working-set size; the next iteration's
/// duration is that residue over the link bandwidth. Iterating this map
/// finds the fixed point: zero when the dirtying is slower than the link
/// (pre-copy converges) and a working-set-sized residue when it is not.
fn equilibrium_residual(bw: f64, regions: &[(f64, u64)], extra: u64) -> u64 {
    let mut d = 1.0f64;
    for _ in 0..64 {
        let w: f64 = regions
            .iter()
            .map(|&(rate, ws)| (rate * d).min(ws as f64))
            .sum::<f64>()
            + extra as f64;
        d = w / bw;
        if d < 1e-4 {
            break;
        }
    }
    ((bw * d) as u64).max(extra)
}

/// Estimates the dirty set remaining at pause time under vanilla pre-copy.
fn precopy_residual(probe: &WorkloadProbe) -> u64 {
    equilibrium_residual(
        probe.bandwidth.bytes_per_sec(),
        &[
            (probe.alloc_rate, probe.young_committed),
            (probe.other_dirty_rate, probe.other_ws_bytes),
        ],
        0,
    )
    .min(probe.vm_bytes)
}

/// Chooses a migration strategy for the probed workload.
///
/// # Examples
///
/// ```
/// use migrate::policy::{choose_strategy, Strategy, WorkloadProbe};
/// use simkit::units::Bandwidth;
/// use simkit::SimDuration;
///
/// // A derby-like workload: 1 GiB Young gen dirtied at 340 MB/s.
/// let derby = WorkloadProbe {
///     vm_bytes: 2 << 30,
///     young_committed: 1 << 30,
///     alloc_rate: 340e6,
///     other_dirty_rate: 5e6,
///     other_ws_bytes: 40 << 20,
///     expected_survivors: 11 << 20,
///     minor_gc_duration: SimDuration::from_millis(900),
///     bandwidth: Bandwidth::gigabit_ethernet(),
///     resume_time: SimDuration::from_millis(170),
/// };
/// assert_eq!(choose_strategy(&derby).strategy, Strategy::Javmm);
/// ```
pub fn choose_strategy(probe: &WorkloadProbe) -> Decision {
    let residual = precopy_residual(probe);
    let precopy_downtime = probe.bandwidth.time_to_send(residual) + probe.resume_time;

    // JAVMM pays the enforced GC and sends the survivors plus whatever
    // non-Young residue its own (shorter) iterations leave behind.
    let javmm_residual = equilibrium_residual(
        probe.bandwidth.bytes_per_sec(),
        &[(probe.other_dirty_rate, probe.other_ws_bytes)],
        probe.expected_survivors,
    );
    let javmm_downtime =
        probe.minor_gc_duration + probe.bandwidth.time_to_send(javmm_residual) + probe.resume_time;

    let strategy = if javmm_downtime <= precopy_downtime {
        Strategy::Javmm
    } else {
        Strategy::Precopy
    };
    Decision {
        strategy,
        precopy_downtime,
        javmm_downtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_probe() -> WorkloadProbe {
        WorkloadProbe {
            vm_bytes: 2 << 30,
            young_committed: 1 << 30,
            alloc_rate: 340e6,
            other_dirty_rate: 5e6,
            other_ws_bytes: 40 << 20,
            expected_survivors: 11 << 20,
            minor_gc_duration: SimDuration::from_millis(900),
            bandwidth: Bandwidth::gigabit_ethernet(),
            resume_time: SimDuration::from_millis(170),
        }
    }

    #[test]
    fn assist_actions_follow_config() {
        assert_eq!(
            AssistAction::enabled(&ColdAssistConfig::off()),
            vec![AssistAction::Skip]
        );
        let full = AssistAction::enabled(&ColdAssistConfig::full());
        assert_eq!(
            full,
            vec![AssistAction::Skip, AssistAction::Defer, AssistAction::Delta]
        );
        assert_eq!(
            full.iter().map(|a| a.name()).collect::<Vec<_>>(),
            vec!["skip", "defer", "delta"]
        );
    }

    #[test]
    fn high_allocation_short_lived_picks_javmm() {
        let d = choose_strategy(&base_probe());
        assert_eq!(d.strategy, Strategy::Javmm);
        assert!(d.precopy_downtime > SimDuration::from_secs(5));
        assert!(d.javmm_downtime < SimDuration::from_secs(2));
    }

    #[test]
    fn scimark_like_picks_precopy() {
        // Low allocation, high survival, long-lived objects: the enforced
        // GC buys nothing and costs pause time.
        let probe = WorkloadProbe {
            young_committed: 128 << 20,
            alloc_rate: 20e6,
            other_dirty_rate: 500e6,
            other_ws_bytes: 130 << 20,
            expected_survivors: 40 << 20,
            minor_gc_duration: SimDuration::from_millis(600),
            ..base_probe()
        };
        let d = choose_strategy(&probe);
        assert_eq!(d.strategy, Strategy::Precopy);
    }

    #[test]
    fn read_intensive_picks_precopy() {
        // Barely any dirtying: pre-copy converges to a near-zero last
        // iteration, while JAVMM would add a GC pause.
        let probe = WorkloadProbe {
            alloc_rate: 2e6,
            other_dirty_rate: 1e6,
            expected_survivors: 5 << 20,
            minor_gc_duration: SimDuration::from_millis(500),
            ..base_probe()
        };
        let d = choose_strategy(&probe);
        assert_eq!(d.strategy, Strategy::Precopy);
        assert!(d.precopy_downtime < SimDuration::from_millis(500));
    }

    // -- Mid-run bandwidth drops (shared-link starvation) -------------------
    //
    // On a shared uplink a migration's share can collapse mid-drain when
    // more VMs are admitted. The policy must be re-evaluated at the new
    // share, and its estimates must behave sanely all the way down.

    #[test]
    fn bandwidth_drop_flips_precopy_to_javmm() {
        // 50 MB/s of Young dirtying against a full gigabit link converges
        // fine, and skipping the enforced GC wins.
        let probe = WorkloadProbe {
            alloc_rate: 50e6,
            young_committed: 512 << 20,
            ..base_probe()
        };
        let full = choose_strategy(&probe);
        assert_eq!(full.strategy, Strategy::Precopy);

        // The same workload at a 40 MB/s contended share can no longer
        // outrun its own dirtying: the pre-copy residual saturates at the
        // Young working set and the decision must flip to JAVMM.
        let starved = WorkloadProbe {
            bandwidth: Bandwidth::from_mbytes_per_sec(40.0),
            ..probe
        };
        let drop = choose_strategy(&starved);
        assert_eq!(drop.strategy, Strategy::Javmm);
        assert!(
            drop.precopy_downtime > SimDuration::from_secs(10),
            "saturated residual must dominate the estimate, got {:?}",
            drop.precopy_downtime
        );
        assert!(drop.javmm_downtime < SimDuration::from_secs(3));
    }

    #[test]
    fn downtime_estimates_degrade_monotonically_with_bandwidth() {
        // Halving the share over and over must never make either strategy
        // look *better* — the adaptive policy relies on this to be stable
        // under re-rating.
        let mut last_precopy = SimDuration::ZERO;
        let mut last_javmm = SimDuration::ZERO;
        for div in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let probe = WorkloadProbe {
                bandwidth: Bandwidth::from_bytes_per_sec(
                    Bandwidth::gigabit_ethernet().bytes_per_sec() / div,
                ),
                ..base_probe()
            };
            let d = choose_strategy(&probe);
            assert!(
                d.precopy_downtime >= last_precopy,
                "pre-copy estimate improved when the link shrank by {div}x"
            );
            assert!(
                d.javmm_downtime >= last_javmm,
                "JAVMM estimate improved when the link shrank by {div}x"
            );
            last_precopy = d.precopy_downtime;
            last_javmm = d.javmm_downtime;
        }
    }

    #[test]
    fn starvation_below_dirty_rate_saturates_both_estimates() {
        // A 2 MB/s share under a 5 MB/s non-Young dirty rate: neither
        // strategy converges, residuals cap at the working sets, and the
        // estimates stay finite — exactly what admission control consults
        // to refuse such a split in the first place.
        let probe = WorkloadProbe {
            bandwidth: Bandwidth::from_mbytes_per_sec(2.0),
            ..base_probe()
        };
        let d = choose_strategy(&probe);
        // Pre-copy must at least re-send the entire Young commit.
        assert!(d.precopy_downtime >= probe.bandwidth.time_to_send(probe.young_committed));
        // JAVMM still has to push the survivors and the capped non-Young
        // working set through the starved pipe.
        assert!(d.javmm_downtime >= probe.bandwidth.time_to_send(probe.expected_survivors));
        // Even starved, shedding the Young generation keeps JAVMM ahead.
        assert_eq!(d.strategy, Strategy::Javmm);
    }
}
