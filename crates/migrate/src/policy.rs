//! Adaptive strategy selection: when (not) to use JAVMM.
//!
//! §6 of the paper identifies workload scenarios where JAVMM should be used
//! "with consideration of the resulting application downtime": long minor
//! GCs, high object survival, and read-intensive workloads. It proposes
//! incorporating this knowledge back into the system — in the simplest
//! form, turning JAVMM off and using traditional pre-copy for those
//! scenarios. This module implements that policy: estimate the downtime of
//! both strategies from observable workload characteristics and pick the
//! smaller.

use simkit::units::Bandwidth;
use simkit::SimDuration;

/// Observable characteristics of the candidate VM's workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProbe {
    /// VM memory size in bytes.
    pub vm_bytes: u64,
    /// Committed Young generation size.
    pub young_committed: u64,
    /// Young-generation allocation rate, bytes/second.
    pub alloc_rate: f64,
    /// Non-Young dirty rate (Old gen working set + OS), bytes/second.
    pub other_dirty_rate: f64,
    /// Size of the non-Young working set being rewritten, bytes.
    pub other_ws_bytes: u64,
    /// Expected live data surviving an enforced minor GC, bytes.
    pub expected_survivors: u64,
    /// Expected duration of a minor GC at the current Young size.
    pub minor_gc_duration: SimDuration,
    /// Migration link bandwidth.
    pub bandwidth: Bandwidth,
    /// Destination resumption time.
    pub resume_time: SimDuration,
}

/// The strategy chosen for a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Traditional pre-copy (vanilla Xen).
    Precopy,
    /// Application-assisted migration with the enforced GC.
    Javmm,
}

/// Estimated downtimes behind a [`Strategy`] decision.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Estimated workload downtime under vanilla pre-copy.
    pub precopy_downtime: SimDuration,
    /// Estimated workload downtime under JAVMM.
    pub javmm_downtime: SimDuration,
}

/// Solves for the equilibrium dirty residue of an iterative pre-copy.
///
/// One iteration of duration `d` accumulates `rate x d` dirty bytes in each
/// region, capped by the region's working-set size; the next iteration's
/// duration is that residue over the link bandwidth. Iterating this map
/// finds the fixed point: zero when the dirtying is slower than the link
/// (pre-copy converges) and a working-set-sized residue when it is not.
fn equilibrium_residual(bw: f64, regions: &[(f64, u64)], extra: u64) -> u64 {
    let mut d = 1.0f64;
    for _ in 0..64 {
        let w: f64 = regions
            .iter()
            .map(|&(rate, ws)| (rate * d).min(ws as f64))
            .sum::<f64>()
            + extra as f64;
        d = w / bw;
        if d < 1e-4 {
            break;
        }
    }
    ((bw * d) as u64).max(extra)
}

/// Estimates the dirty set remaining at pause time under vanilla pre-copy.
fn precopy_residual(probe: &WorkloadProbe) -> u64 {
    equilibrium_residual(
        probe.bandwidth.bytes_per_sec(),
        &[
            (probe.alloc_rate, probe.young_committed),
            (probe.other_dirty_rate, probe.other_ws_bytes),
        ],
        0,
    )
    .min(probe.vm_bytes)
}

/// Chooses a migration strategy for the probed workload.
///
/// # Examples
///
/// ```
/// use migrate::policy::{choose_strategy, Strategy, WorkloadProbe};
/// use simkit::units::Bandwidth;
/// use simkit::SimDuration;
///
/// // A derby-like workload: 1 GiB Young gen dirtied at 340 MB/s.
/// let derby = WorkloadProbe {
///     vm_bytes: 2 << 30,
///     young_committed: 1 << 30,
///     alloc_rate: 340e6,
///     other_dirty_rate: 5e6,
///     other_ws_bytes: 40 << 20,
///     expected_survivors: 11 << 20,
///     minor_gc_duration: SimDuration::from_millis(900),
///     bandwidth: Bandwidth::gigabit_ethernet(),
///     resume_time: SimDuration::from_millis(170),
/// };
/// assert_eq!(choose_strategy(&derby).strategy, Strategy::Javmm);
/// ```
pub fn choose_strategy(probe: &WorkloadProbe) -> Decision {
    let residual = precopy_residual(probe);
    let precopy_downtime = probe.bandwidth.time_to_send(residual) + probe.resume_time;

    // JAVMM pays the enforced GC and sends the survivors plus whatever
    // non-Young residue its own (shorter) iterations leave behind.
    let javmm_residual = equilibrium_residual(
        probe.bandwidth.bytes_per_sec(),
        &[(probe.other_dirty_rate, probe.other_ws_bytes)],
        probe.expected_survivors,
    );
    let javmm_downtime =
        probe.minor_gc_duration + probe.bandwidth.time_to_send(javmm_residual) + probe.resume_time;

    let strategy = if javmm_downtime <= precopy_downtime {
        Strategy::Javmm
    } else {
        Strategy::Precopy
    };
    Decision {
        strategy,
        precopy_downtime,
        javmm_downtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_probe() -> WorkloadProbe {
        WorkloadProbe {
            vm_bytes: 2 << 30,
            young_committed: 1 << 30,
            alloc_rate: 340e6,
            other_dirty_rate: 5e6,
            other_ws_bytes: 40 << 20,
            expected_survivors: 11 << 20,
            minor_gc_duration: SimDuration::from_millis(900),
            bandwidth: Bandwidth::gigabit_ethernet(),
            resume_time: SimDuration::from_millis(170),
        }
    }

    #[test]
    fn high_allocation_short_lived_picks_javmm() {
        let d = choose_strategy(&base_probe());
        assert_eq!(d.strategy, Strategy::Javmm);
        assert!(d.precopy_downtime > SimDuration::from_secs(5));
        assert!(d.javmm_downtime < SimDuration::from_secs(2));
    }

    #[test]
    fn scimark_like_picks_precopy() {
        // Low allocation, high survival, long-lived objects: the enforced
        // GC buys nothing and costs pause time.
        let probe = WorkloadProbe {
            young_committed: 128 << 20,
            alloc_rate: 20e6,
            other_dirty_rate: 500e6,
            other_ws_bytes: 130 << 20,
            expected_survivors: 40 << 20,
            minor_gc_duration: SimDuration::from_millis(600),
            ..base_probe()
        };
        let d = choose_strategy(&probe);
        assert_eq!(d.strategy, Strategy::Precopy);
    }

    #[test]
    fn read_intensive_picks_precopy() {
        // Barely any dirtying: pre-copy converges to a near-zero last
        // iteration, while JAVMM would add a GC pause.
        let probe = WorkloadProbe {
            alloc_rate: 2e6,
            other_dirty_rate: 1e6,
            expected_survivors: 5 << 20,
            minor_gc_duration: SimDuration::from_millis(500),
            ..base_probe()
        };
        let d = choose_strategy(&probe);
        assert_eq!(d.strategy, Strategy::Precopy);
        assert!(d.precopy_downtime < SimDuration::from_millis(500));
    }
}
